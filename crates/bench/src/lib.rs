//! # px-bench — experiment harnesses for every table and figure
//!
//! The ParalleX paper is a model paper: its quantitative artifacts are the
//! §3.2 design point and the performance claims of §2. Each module here
//! regenerates one experiment (see DESIGN.md §4 for the full index); the
//! bench targets under `benches/` are thin `harness = false` wrappers
//! that print the tables, so `cargo bench --workspace` reproduces the
//! whole evaluation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`e1_design_point`] | §3.2 design point + Figure 1 structure |
//! | [`e2_latency_hiding`] | §2.2 parcels/multithreading latency hiding |
//! | [`e3_lco_vs_barrier`] | §2.2 LCOs eliminate global barriers |
//! | [`e4_percolation`] | §2.2 percolation vs prefetch vs demand fetch |
//! | [`e5_echo`] | §2.2 echo split-phase overlap |
//! | [`e6_work_to_data`] | §2.2 moving work to data |
//! | [`e7_modality`] | §3.2 two-modality heterogeneity |
//! | [`e8_irregular`] | §2.1 irregular workloads (Barnes–Hut trees) |
//! | [`e9_litlx_overhead`] | §2.3 LITL-X construct overheads |
//! | [`e10_datavortex`] | §3.2 Data Vortex vs crossbar vs torus |
//! | [`e11_starvation`] | §2.1 starvation under skewed load |
//! | [`e12_balance`] | §2.1/§2.2 adaptive balancing: diffusion + migration |
//! | [`e13_tenancy`] | §2.2 process trees: tenant isolation via cancellation |
//! | [`e14_distributed`] | §2.2 parcels over a real network: TCP multi-process |
//!
//! All experiments are functions returning plain row structs so tests can
//! assert the qualitative shapes (who wins, where crossovers fall) that
//! EXPERIMENTS.md records. `BENCH_*.json` artifacts are emitted through
//! derived `Serialize` impls by the [`json`] module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e10_datavortex;
pub mod e11_starvation;
pub mod e12_balance;
pub mod e12_tcp;
pub mod e13_tenancy;
pub mod e14_distributed;
pub mod e1_design_point;
pub mod e2_latency_hiding;
pub mod e3_lco_vs_barrier;
pub mod e4_percolation;
pub mod e5_echo;
pub mod e6_work_to_data;
pub mod e7_modality;
pub mod e8_irregular;
pub mod e9_litlx_overhead;
pub mod json;
pub mod metrics_report;
pub mod table;

/// Serializes wall-clock experiments: unit tests run concurrently by
/// default and would contend for cores, inverting timing comparisons.
/// Every timing-sensitive test takes this lock first.
pub static TIMING_GATE: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

/// The global `--trace` switch, set by `main` (or a mesh child's
/// environment) before any experiment builds a runtime.
pub static TRACE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// True when `--trace` was passed: experiments enable sampled causal
/// tracing and print the slowest traced request's timeline.
pub fn trace_enabled() -> bool {
    // Relaxed: a boolean flag written once during startup.
    TRACE.load(std::sync::atomic::Ordering::Relaxed)
}

/// Apply the bench tracing policy to a config when `--trace` is on:
/// sample one root parcel in 64 into 64Ki-event per-locality rings —
/// cheap enough to leave on for a whole run, dense enough that every
/// phase of an experiment catches several requests.
pub fn apply_trace(cfg: px_core::prelude::Config) -> px_core::prelude::Config {
    if trace_enabled() {
        cfg.with_trace_sampling(64)
            .with_trace_ring_capacity(1 << 16)
    } else {
        cfg
    }
}

/// The global `--metrics` switch, set by `main` (or a mesh child's
/// environment) before any experiment builds a runtime.
pub static METRICS: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// True when `--metrics` was passed: experiments enable the latency
/// histograms, print percentile tables, and carry the rows into their
/// `BENCH_*.json` artifacts.
pub fn metrics_enabled() -> bool {
    // Relaxed: a boolean flag written once during startup.
    METRICS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Enable the metrics plane on a config when `--metrics` is on
/// (`apply_trace`'s sibling — the off path stays the untouched config).
pub fn apply_metrics(cfg: px_core::prelude::Config) -> px_core::prelude::Config {
    if metrics_enabled() {
        cfg.with_metrics(true)
    } else {
        cfg
    }
}

/// Print the slowest traced request's causal timeline (the trace id
/// whose recorded events span the longest wall-clock interval in this
/// process) plus the ring counters. No-op unless `--trace` is on.
pub fn print_slowest_trace(label: &str, rt: &px_core::prelude::Runtime) {
    if !trace_enabled() {
        return;
    }
    let total = rt.stats().total();
    println!(
        "[trace] {label}: {} events recorded, {} dropped",
        total.trace_events_recorded, total.trace_events_dropped
    );
    let dump = rt.trace_dump();
    let slowest = dump
        .trace_ids()
        .into_iter()
        .filter(|&t| t != 0) // id 0 carries parcel-less runtime events
        .map(|t| {
            let d = dump.filter(t);
            let span = d.events.iter().map(|e| e.at_ns).max().unwrap_or(0)
                - d.events.iter().map(|e| e.at_ns).min().unwrap_or(0);
            (span, t, d)
        })
        .max_by_key(|&(span, t, _)| (span, t));
    match slowest {
        Some((span, t, d)) => {
            println!(
                "[trace] {label}: slowest traced request {t:#018x} spans {:.1} us over {} events:",
                span as f64 / 1e3,
                d.events.len()
            );
            print!("{}", d.render());
        }
        None => println!("[trace] {label}: no traced requests captured"),
    }
}

/// True when the host exposes at least `n` hardware threads. Comparative
/// wall-clock experiments (barrier vs dataflow, static vs work-queue)
/// need real parallelism: on a single core every placement serializes to
/// the same makespan and the contrast they measure does not exist. Tests
/// asserting those contrasts skip (pass vacuously) below their core
/// floor; the experiment binaries still run and print whatever the host
/// yields.
pub fn has_cores(n: usize) -> bool {
    std::thread::available_parallelism()
        .map(|p| p.get() >= n)
        .unwrap_or(false)
}
