//! E1: the Gilgamesh II design point (§3.2) and Figure 1 structure.

use crate::table::{f2, print_table};
use px_gilgamesh::chip::{simulate_chip, ChipWorkload, NODES_PER_CHIP, PIM_MODULES};
use px_gilgamesh::design_point::{check_paper_claims, DesignPoint};

/// One row of the chip-count sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Compute chips.
    pub chips: u64,
    /// System peak, exaflops.
    pub exaflops: f64,
    /// Total MIND nodes.
    pub mind_nodes: u64,
    /// Hardware threads.
    pub threads: u64,
    /// System power, MW.
    pub megawatts: f64,
}

/// Sweep the design point over chip counts (the paper's scaling argument).
pub fn chip_sweep(chip_counts: &[u64]) -> Vec<SweepRow> {
    chip_counts
        .iter()
        .map(|&chips| {
            let mut dp = DesignPoint::paper_2020();
            dp.compute_chips = chips;
            dp.store_chips = chips;
            let s = dp.summary();
            SweepRow {
                chips,
                exaflops: s.system_exaflops,
                mind_nodes: s.total_mind_nodes,
                threads: s.hardware_threads,
                megawatts: s.system_megawatts,
            }
        })
        .collect()
}

/// Run the experiment and print its tables; returns the paper-claim
/// violations (must be empty).
pub fn run() -> Vec<String> {
    let dp = DesignPoint::paper_2020();
    let s = dp.summary();
    print_table(
        "E1a — Gilgamesh II design point (paper §3.2 vs model)",
        &["quantity", "paper claim", "model"],
        &[
            vec![
                "chip structure".into(),
                "accel + 16 PIM × 32 MIND".into(),
                format!(
                    "accel + {} PIM × {} MIND",
                    dp.pim_modules_per_chip, dp.mind_nodes_per_module
                ),
            ],
            vec![
                "chip peak".into(),
                "≈10 TFLOPS".into(),
                format!("{:.2} TFLOPS", s.flops_per_chip / 1e12),
            ],
            vec![
                "system peak (100K chips)".into(),
                ">1 EFLOPS".into(),
                format!("{:.3} EFLOPS", s.system_exaflops),
            ],
            vec![
                "penultimate store".into(),
                "4 PB on 100K chips".into(),
                format!("{:.2} PB on {} chips", s.store_pb, dp.store_chips),
            ],
            vec![
                "MIND nodes".into(),
                "(derived)".into(),
                format!("{}", s.total_mind_nodes),
            ],
            vec![
                "hardware threads".into(),
                "\"million to billion way\"".into(),
                format!("{:.0}M", s.hardware_threads as f64 / 1e6),
            ],
            vec![
                "system power".into(),
                "(2020 envelope)".into(),
                format!("{:.1} MW", s.system_megawatts),
            ],
            vec![
                "efficiency".into(),
                "(derived)".into(),
                format!("{:.1} GF/W", s.gflops_per_watt),
            ],
            vec![
                "memory balance".into(),
                "(derived)".into(),
                format!("{:.4} B/FLOP", s.bytes_per_flop),
            ],
        ],
    );

    let sweep = chip_sweep(&[1_000, 10_000, 50_000, 100_000, 200_000]);
    print_table(
        "E1b — design-point sweep over chip count",
        &["chips", "EFLOPS", "MIND nodes", "HW threads", "MW"],
        &sweep
            .iter()
            .map(|r| {
                vec![
                    r.chips.to_string(),
                    format!("{:.3}", r.exaflops),
                    r.mind_nodes.to_string(),
                    r.threads.to_string(),
                    f2(r.megawatts),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Figure 1 structure, executed: one chip's PIM fabric under a
    // parcel work queue at two skews.
    let mut rows = Vec::new();
    for &skew in &[0.0, 0.8] {
        let r = simulate_chip(
            ChipWorkload {
                tasks: 100_000,
                skew,
                mem_ops: 8,
                alu_ops: 64,
                inject_per_cycle: 2.0,
            },
            16,
            7,
        );
        rows.push(vec![
            format!("{skew:.1}"),
            r.makespan.to_string(),
            f2(r.tasks_per_kcycle),
            f2(r.mean_utilization),
            f2(r.imbalance),
            f2(r.queue_p95),
        ]);
    }
    print_table(
        &format!(
            "E1c — one-chip PIM fabric simulation ({PIM_MODULES} modules, {NODES_PER_CHIP} MIND nodes, 16 threads each)"
        ),
        &["skew", "makespan (cyc)", "tasks/kcyc", "util", "imbalance", "queue p95"],
        &rows,
    );

    let violations = check_paper_claims(&dp);
    if violations.is_empty() {
        println!("  paper-claim check: all §3.2 claims reproduced ✓");
    } else {
        println!("  paper-claim check FAILED: {violations:?}");
    }
    violations
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_reproduces_paper_claims() {
        let _gate = crate::TIMING_GATE.lock();
        assert!(super::run().is_empty());
    }

    #[test]
    fn sweep_monotone() {
        let _gate = crate::TIMING_GATE.lock();
        let rows = super::chip_sweep(&[1000, 2000, 4000]);
        assert!(rows[1].exaflops > rows[0].exaflops);
        assert!(rows[2].threads == 2 * rows[1].threads);
    }
}
