//! E13: multi-tenant process trees — the isolation win of cancellation
//! (§2.2 parallel processes; the "per-tenant work contexts" scenario the
//! ROADMAP's heavy-traffic north star implies).
//!
//! `TENANTS` tenant processes share one runtime. Tenant request sizes are
//! Zipf-skewed, so a few tenants are *stragglers* carrying most of the
//! work while the rest are small. Each tenant is a subprocess tree: the
//! tenant root process spawns its tasks (blocking grain, like E12) round
//! robin over the localities.
//!
//! Two modes:
//!
//! * **run-to-completion** — every tenant runs until quiescence. The
//!   stragglers dominate the makespan; small tenants are long done while
//!   the runtime grinds the heavy tail.
//! * **deadline-cancel** — a deadline thread cancels every tenant that
//!   has not quiesced by the deadline ([`px_core::process::ProcessRef::cancel`]).
//!   Cancelled tenants resolve their waiters with
//!   `FaultCause::Cancelled`; queued work is dropped at dispatch, so the
//!   makespan is bounded by deadline + drain.
//!
//! The isolation win is the makespan ratio: on-time tenants are served at
//! the same cost, and the deadline bounds how much a straggler can drag
//! everyone's wall clock. Healthy runs (a deadline no tenant misses)
//! must report **zero** cancellations — the subsystem is free until used.
//!
//! `run()` prints the table and writes `BENCH_tenancy.json` (through the
//! derived-`Serialize` JSON emitter in [`crate::json`]) at the workspace
//! root.

use crate::table::{f2, ms, print_table};
use px_core::prelude::*;
use px_workloads::synth::{sleep_for_ns, zipf_assign};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Simulated localities (single-worker each, like E12).
pub const LOCALITIES: usize = 4;
/// Zipf skew of request sizes over tenants (~80%+ of the work lands on
/// the heaviest tenant at s = 2.5).
pub const SKEW: f64 = 2.5;

/// Experiment sizes (shrunk by `smoke`).
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Tenant processes.
    pub tenants: usize,
    /// Total tasks, Zipf-split over the tenants.
    pub tasks: usize,
    /// Per-task blocking grain, ns.
    pub grain_ns: u64,
    /// Deadline after which stragglers are cancelled (cancel mode only).
    pub deadline: Duration,
}

/// Full-size parameters (the JSON run).
pub const FULL: Params = Params {
    tenants: 12,
    tasks: 1600,
    grain_ns: 200_000,
    deadline: Duration::from_millis(30),
};

/// Smoke-test parameters (CI).
pub const SMOKE: Params = Params {
    tenants: 8,
    tasks: 240,
    grain_ns: 100_000,
    deadline: Duration::from_millis(15),
};

/// One measurement: the tenant fleet under one deadline policy.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// `"run-to-completion"` or `"deadline-cancel"`.
    pub mode: String,
    /// Wall clock until every tenant resolved (quiesced or cancelled).
    pub makespan_ms: f64,
    /// Tenants that quiesced before resolution.
    pub tenants_completed: u64,
    /// Tenants cancelled at the deadline.
    pub tenants_cancelled: u64,
    /// Tasks that actually executed.
    pub tasks_executed: u64,
    /// Tasks dropped/killed by cancellation (queued threads + parcels).
    pub tasks_cancelled: u64,
    /// Process-subtree cancellations recorded by the runtime.
    pub processes_cancelled: u64,
    /// Every cancelled tenant's waiter observed `FaultCause::Cancelled`.
    pub faults_observed: u64,
}

/// The committed JSON artifact.
#[derive(Debug, Clone, Serialize)]
pub struct TenancyJson {
    /// Bench name (`"e13_tenancy"`).
    pub bench: String,
    /// Localities simulated.
    pub localities: u64,
    /// Tenant processes.
    pub tenants: u64,
    /// Total tasks across tenants.
    pub tasks: u64,
    /// Per-task blocking grain, ns.
    pub grain_ns: u64,
    /// Zipf skew of request sizes.
    pub zipf_skew: f64,
    /// Cancellation deadline, ms.
    pub deadline_ms: f64,
    /// Makespan ratio: run-to-completion / deadline-cancel.
    pub isolation_win: f64,
    /// Both modes.
    pub rows: Vec<Row>,
    /// Final runtime counters of the deadline-cancel run (totals over
    /// localities), emitted straight through `StatsSnapshot`'s derived
    /// `Serialize`.
    pub cancel_run_stats: px_core::stats::LocalityStats,
}

/// Run the tenant fleet once. `deadline = None` lets stragglers run.
pub fn run_fleet(p: Params, deadline: Option<Duration>) -> Row {
    run_fleet_with_stats(p, deadline).0
}

/// As [`run_fleet`], also returning the run's final counter totals.
pub fn run_fleet_with_stats(
    p: Params,
    deadline: Option<Duration>,
) -> (Row, px_core::stats::LocalityStats) {
    let rt = Arc::new(
        RuntimeBuilder::new(crate::apply_trace(
            Config::small(LOCALITIES, 1).with_latency(Duration::from_micros(20)),
        ))
        .build()
        .unwrap(),
    );
    // Zipf-split the task budget over tenants.
    let assignment = zipf_assign(p.tasks, p.tenants, SKEW, 0xe13);
    let mut sizes = vec![0usize; p.tenants];
    for &t in &assignment {
        sizes[t as usize] += 1;
    }
    let executed = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let tenants: Vec<_> = (0..p.tenants)
        .map(|i| rt.create_process(LocalityId((i % LOCALITIES) as u16)))
        .collect();
    // Inject round-robin, one task per still-pending tenant per round —
    // fair-share arrival. A tenant with n tasks has all of them queued
    // within the first n rounds, so a small tenant's completion time
    // scales with *its* size (plus its fair share of the machine), not
    // with the straggler's backlog.
    let grain = p.grain_ns;
    let mut remaining = sizes.clone();
    let mut k = 0usize;
    while remaining.iter().any(|&r| r > 0) {
        for (t, rem) in remaining.iter_mut().enumerate() {
            if *rem == 0 {
                continue;
            }
            *rem -= 1;
            let executed = executed.clone();
            tenants[t].spawn_at(&rt, LocalityId((k % LOCALITIES) as u16), move |_ctx| {
                sleep_for_ns(grain);
                // Relaxed: completion tally, read after the run joins.
                executed.fetch_add(1, Ordering::Relaxed);
            });
            k += 1;
        }
    }
    for proc in &tenants {
        proc.finish_root(&rt);
    }

    // The deadline thread: cancel whatever has not quiesced in time.
    // `stop_tx` lets the driver wake it early once every tenant has
    // resolved, so a generous deadline does not stall the harness.
    let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
    let killer = deadline.map(|d| {
        let rt = rt.clone();
        let procs = tenants.clone();
        std::thread::spawn(move || {
            if stop_rx.recv_timeout(d).is_ok() {
                return; // fleet finished before the deadline
            }
            for proc in procs {
                if proc.active(&rt) > 0 && !proc.is_cancelled(&rt) {
                    proc.cancel(&rt);
                }
            }
        })
    });

    let mut completed = 0u64;
    let mut cancelled = 0u64;
    let mut faults = 0u64;
    for proc in &tenants {
        match proc.wait(&rt) {
            Ok(()) => completed += 1,
            Err(PxError::Fault(f)) => {
                cancelled += 1;
                if f.cause == FaultCause::Cancelled {
                    faults += 1;
                }
            }
            Err(e) => panic!("unexpected tenant error: {e}"),
        }
    }
    let makespan = t0.elapsed();
    let _ = stop_tx.send(());
    if let Some(k) = killer {
        k.join().unwrap();
    }
    crate::print_slowest_trace("e13", &rt);
    // Snapshot after shutdown: the workers have fully drained (and
    // counted) the cancelled tenants' queued tasks by then.
    rt.shutdown();
    let stats = rt.stats();
    let total = stats.total();
    let row = Row {
        mode: if deadline.is_some() {
            "deadline-cancel".into()
        } else {
            "run-to-completion".into()
        },
        makespan_ms: makespan.as_secs_f64() * 1e3,
        tenants_completed: completed,
        tenants_cancelled: cancelled,
        // Relaxed: the runtime has shut down; no writer remains.
        tasks_executed: executed.load(Ordering::Relaxed),
        tasks_cancelled: total.tasks_cancelled + total.dead_cancelled,
        processes_cancelled: stats.processes_cancelled,
        faults_observed: faults,
    };
    (row, total)
}

fn print_rows(title: &str, rows: &[Row]) {
    print_table(
        title,
        &[
            "mode",
            "makespan",
            "done",
            "cancelled",
            "tasks run",
            "tasks killed",
            "faults",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    ms(Duration::from_secs_f64(r.makespan_ms / 1e3)),
                    r.tenants_completed.to_string(),
                    r.tenants_cancelled.to_string(),
                    r.tasks_executed.to_string(),
                    r.tasks_cancelled.to_string(),
                    r.faults_observed.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn run_with(p: Params, write: bool) -> Vec<Row> {
    println!(
        "\n[E13] {} tenants, {} × {} µs Zipf(s={SKEW}) tasks over {LOCALITIES} localities, \
         deadline {:?}",
        p.tenants,
        p.tasks,
        p.grain_ns / 1000,
        p.deadline
    );
    let full = run_fleet(p, None);
    let cut = run_fleet(p, Some(p.deadline));
    let rows = vec![full, cut];
    print_rows(
        "E13 — tenant isolation: deadline cancellation vs letting stragglers run",
        &rows,
    );
    let win = rows[0].makespan_ms / rows[1].makespan_ms;
    println!("isolation win (makespan ratio): {}", f2(win));
    if write {
        let (_, cancel_stats) = run_fleet_with_stats(p, Some(p.deadline));
        let doc = TenancyJson {
            bench: "e13_tenancy".into(),
            localities: LOCALITIES as u64,
            tenants: p.tenants as u64,
            tasks: p.tasks as u64,
            grain_ns: p.grain_ns,
            zipf_skew: SKEW,
            deadline_ms: p.deadline.as_secs_f64() * 1e3,
            isolation_win: win,
            rows: rows.clone(),
            cancel_run_stats: cancel_stats,
        };
        let json = crate::json::to_json_pretty(&doc);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tenancy.json");
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    rows
}

/// Full experiment: print the table and write `BENCH_tenancy.json`.
pub fn run() -> Vec<Row> {
    run_with(FULL, true)
}

/// CI smoke: scaled-down run, no JSON (the committed JSON tracks the
/// full-size numbers).
pub fn smoke() -> Vec<Row> {
    run_with(SMOKE, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Healthy fleets — no deadline, or one nobody misses — must report
    /// zero cancellations anywhere in the runtime (the acceptance
    /// criterion's "free until used" guarantee).
    #[test]
    fn healthy_runs_report_zero_cancellations() {
        let _gate = crate::TIMING_GATE.lock();
        let p = Params {
            tenants: 4,
            tasks: 60,
            grain_ns: 20_000,
            deadline: Duration::from_secs(300), // generous: never fires
        };
        for deadline in [None, Some(p.deadline)] {
            let row = run_fleet(p, deadline);
            assert_eq!(row.tenants_cancelled, 0, "{row:?}");
            assert_eq!(row.tasks_cancelled, 0, "{row:?}");
            assert_eq!(row.processes_cancelled, 0, "{row:?}");
            assert_eq!(row.tenants_completed, p.tenants as u64);
            assert_eq!(row.tasks_executed, p.tasks as u64);
        }
    }

    /// The isolation claim: with a straggler-heavy Zipf split, deadline
    /// cancellation bounds the makespan below run-to-completion, every
    /// missed tenant resolves with `FaultCause::Cancelled`, and no
    /// tenant hangs.
    #[test]
    fn deadline_cancellation_bounds_the_makespan() {
        let _gate = crate::TIMING_GATE.lock();
        let p = Params {
            tenants: 8,
            tasks: 600,
            grain_ns: 150_000,
            deadline: Duration::from_millis(12),
        };
        let mut last = String::new();
        for _ in 0..3 {
            let full = run_fleet(p, None);
            let cut = run_fleet(p, Some(p.deadline));
            let ratio = full.makespan_ms / cut.makespan_ms;
            let clean = cut.tenants_cancelled > 0
                && cut.faults_observed == cut.tenants_cancelled
                && cut.tenants_completed + cut.tenants_cancelled == p.tenants as u64;
            if ratio >= 1.3 && clean {
                return;
            }
            last = format!(
                "full {:.1}ms vs cut {:.1}ms (ratio {ratio:.2}); cut row {cut:?}",
                full.makespan_ms, cut.makespan_ms
            );
        }
        panic!("{last}");
    }
}
