//! Balance policies: the decision layer between telemetry and placement.
//!
//! Every decision is a pure function of a small query struct, so policies
//! are unit-testable without a runtime and custom policies can be plugged
//! in through the [`BalancePolicy`] trait object carried by
//! [`BalanceConfig`].
//!
//! The three stock policies map onto the two movement directions §2.2 of
//! the paper names — work chasing data ("moving the work, in essence, to
//! the data") and data percolating toward where it is demanded — plus the
//! adaptive combination the comparative AMT studies (Cilk / Charm++ /
//! ParalleX) argue wins on irregular workloads:
//!
//! * [`WorkToData`] — never migrates objects; rebalances purely by *work
//!   diffusion*: an overloaded locality sheds queued tasks to the
//!   least-loaded gossip peer and redirects fresh spawns there.
//! * [`DataToWork`] — never sheds; objects whose access heat from one
//!   caller locality crosses a threshold are migrated toward that caller.
//! * [`Adaptive`] — both, each gated by relative load so the system sheds
//!   when it is the bottleneck and pulls data only off busier owners.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Inputs to a heat-driven migration decision: should *this* locality
/// pull the object toward itself?
#[derive(Debug, Clone, Copy)]
pub struct PlacementQuery {
    /// Accesses this locality sent to the object during the last window.
    pub heat: u64,
    /// Configured heat threshold ([`BalanceConfig::heat_threshold`]).
    pub heat_threshold: u64,
    /// This locality's own load score.
    pub local_score: f64,
    /// The current owner's gossiped load score, if known.
    pub owner_score: Option<f64>,
}

/// Inputs to a work-diffusion decision: should this locality shed queued
/// tasks (or redirect fresh spawns) to the least-loaded peer?
#[derive(Debug, Clone, Copy)]
pub struct ShedQuery {
    /// This locality's own load score.
    pub local_score: f64,
    /// The least-loaded known peer's score.
    pub least_score: f64,
    /// Instantaneous run-queue depth (tasks available to shed).
    pub queue_depth: u64,
    /// Configured overload ratio ([`BalanceConfig::shed_ratio`]).
    pub shed_ratio: f64,
    /// Configured per-round shed cap ([`BalanceConfig::max_shed_per_round`]).
    pub max_shed: u64,
}

impl ShedQuery {
    /// The shared overload test: local load exceeds `shed_ratio` times the
    /// least-loaded peer (with +1 smoothing so a zero-load peer does not
    /// make every nonzero queue "overloaded").
    pub fn overloaded(&self) -> bool {
        self.local_score > self.shed_ratio * (self.least_score + 1.0)
    }

    /// The shared shed amount: half the load difference, capped by the
    /// per-round limit and by half the queue (never starve yourself to
    /// feed a peer).
    pub fn shed_amount(&self) -> u64 {
        if !self.overloaded() {
            return 0;
        }
        let diff = ((self.local_score - self.least_score) / 2.0).floor();
        (diff as u64).min(self.max_shed).min(self.queue_depth / 2)
    }
}

/// A pluggable balance policy. Implementations must be cheap: `shed` and
/// `redirect_spawn` run once per locality per gossip round, `pull_data`
/// once per hot object per round.
pub trait BalancePolicy: Send + Sync {
    /// Short name used in config `Debug` output and bench tables.
    fn name(&self) -> &'static str;

    /// Work diffusion: number of queued tasks to shed to the least-loaded
    /// peer this round (0 = none).
    fn shed(&self, q: &ShedQuery) -> u64;

    /// Heat-driven migration: pull the object toward this caller?
    fn pull_data(&self, q: &PlacementQuery) -> bool;

    /// Spawn-time diffusion: route a share of fresh local spawns to the
    /// least-loaded peer while overloaded?
    fn redirect_spawn(&self, q: &ShedQuery) -> bool;

    /// Whether this policy ever migrates data. Policies that return
    /// `false` (like [`WorkToData`]) let the runtime skip heat tracking
    /// entirely — no per-send heat-map updates, no per-round drains —
    /// since no decision would ever consume the heat.
    fn uses_heat(&self) -> bool {
        true
    }
}

/// Pure work diffusion: tasks move, objects stay (the model's default
/// direction, made load-aware).
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkToData;

impl BalancePolicy for WorkToData {
    fn name(&self) -> &'static str {
        "work-to-data"
    }
    fn shed(&self, q: &ShedQuery) -> u64 {
        q.shed_amount()
    }
    fn pull_data(&self, _q: &PlacementQuery) -> bool {
        false
    }
    fn redirect_spawn(&self, q: &ShedQuery) -> bool {
        q.overloaded()
    }
    fn uses_heat(&self) -> bool {
        false
    }
}

/// Pure heat-driven migration: hot objects move toward their callers,
/// queued work stays put.
#[derive(Debug, Default, Clone, Copy)]
pub struct DataToWork;

impl BalancePolicy for DataToWork {
    fn name(&self) -> &'static str {
        "data-to-work"
    }
    fn shed(&self, _q: &ShedQuery) -> u64 {
        0
    }
    fn pull_data(&self, q: &PlacementQuery) -> bool {
        q.heat >= q.heat_threshold
    }
    fn redirect_spawn(&self, _q: &ShedQuery) -> bool {
        false
    }
}

/// Both directions, load-gated: shed like [`WorkToData`]; pull hot objects
/// like [`DataToWork`] but only off owners at least as loaded as we are
/// (pulling from a starving owner would trade one imbalance for another).
/// Unknown owner load counts as "at least as loaded" — fresh heat with no
/// gossip yet usually means the owner is swamped.
#[derive(Debug, Default, Clone, Copy)]
pub struct Adaptive;

impl BalancePolicy for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }
    fn shed(&self, q: &ShedQuery) -> u64 {
        q.shed_amount()
    }
    fn pull_data(&self, q: &PlacementQuery) -> bool {
        q.heat >= q.heat_threshold && q.owner_score.is_none_or(|o| o >= q.local_score)
    }
    fn redirect_spawn(&self, q: &ShedQuery) -> bool {
        q.overloaded()
    }
}

/// Configuration for the balancer subsystem. `px_core::Config::balance`
/// holds `Option<BalanceConfig>`; `None` (the default) disables every
/// hook and keeps runtime behavior bit-identical to a balancer-less
/// build.
#[derive(Clone)]
pub struct BalanceConfig {
    /// Decision policy.
    pub policy: Arc<dyn BalancePolicy>,
    /// Balancer pulse: one load sample + one gossip parcel per locality
    /// per interval.
    pub gossip_interval: Duration,
    /// Sliding-window capacity of each locality's [`crate::LoadMonitor`],
    /// in gossip rounds.
    pub window: usize,
    /// Overload factor vs the least-loaded peer before shedding engages.
    pub shed_ratio: f64,
    /// Cap on tasks shed per locality per round.
    pub max_shed_per_round: u64,
    /// Accesses per *gossip round* before an object counts as hot (heat
    /// maps are drained every round, not every monitor window).
    pub heat_threshold: u64,
    /// Cap on balancer-initiated migrations per locality per round
    /// (bounds churn and forwarding chases).
    pub max_pulls_per_round: u64,
}

impl fmt::Debug for BalanceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BalanceConfig")
            .field("policy", &self.policy.name())
            .field("gossip_interval", &self.gossip_interval)
            .field("window", &self.window)
            .field("shed_ratio", &self.shed_ratio)
            .field("max_shed_per_round", &self.max_shed_per_round)
            .field("heat_threshold", &self.heat_threshold)
            .field("max_pulls_per_round", &self.max_pulls_per_round)
            .finish()
    }
}

impl BalanceConfig {
    /// Defaults shared by the stock constructors.
    pub fn with_policy(policy: Arc<dyn BalancePolicy>) -> BalanceConfig {
        BalanceConfig {
            policy,
            gossip_interval: Duration::from_millis(1),
            window: 8,
            shed_ratio: 2.0,
            max_shed_per_round: 32,
            heat_threshold: 16,
            max_pulls_per_round: 4,
        }
    }

    /// Work-diffusion-only configuration.
    pub fn work_to_data() -> BalanceConfig {
        BalanceConfig::with_policy(Arc::new(WorkToData))
    }

    /// Migration-only configuration.
    pub fn data_to_work() -> BalanceConfig {
        BalanceConfig::with_policy(Arc::new(DataToWork))
    }

    /// The adaptive configuration (recommended default when enabling the
    /// balancer).
    pub fn adaptive() -> BalanceConfig {
        BalanceConfig::with_policy(Arc::new(Adaptive))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(local: f64, least: f64, depth: u64) -> ShedQuery {
        ShedQuery {
            local_score: local,
            least_score: least,
            queue_depth: depth,
            shed_ratio: 2.0,
            max_shed: 32,
        }
    }

    fn pq(heat: u64, local: f64, owner: Option<f64>) -> PlacementQuery {
        PlacementQuery {
            heat,
            heat_threshold: 16,
            local_score: local,
            owner_score: owner,
        }
    }

    #[test]
    fn overload_test_uses_ratio_with_smoothing() {
        assert!(!sq(2.0, 0.0, 10).overloaded(), "2.0 ≤ 2×(0+1)");
        assert!(sq(2.1, 0.0, 10).overloaded());
        assert!(!sq(30.0, 20.0, 100).overloaded(), "30 ≤ 2×21");
        assert!(sq(100.0, 20.0, 100).overloaded());
    }

    #[test]
    fn shed_amount_moves_half_the_difference_capped() {
        let q = sq(100.0, 0.0, 1000);
        assert_eq!(q.shed_amount(), 32, "capped by max_shed");
        let q = sq(10.0, 0.0, 1000);
        assert_eq!(q.shed_amount(), 5, "half the difference");
        let q = sq(100.0, 0.0, 8);
        assert_eq!(q.shed_amount(), 4, "never shed more than half the queue");
        assert_eq!(sq(1.0, 0.0, 1000).shed_amount(), 0, "not overloaded");
    }

    #[test]
    fn work_to_data_sheds_never_pulls() {
        let p = WorkToData;
        assert_eq!(p.shed(&sq(100.0, 0.0, 1000)), 32);
        assert!(p.redirect_spawn(&sq(100.0, 0.0, 1000)));
        assert!(!p.pull_data(&pq(1_000_000, 0.0, Some(100.0))));
        assert!(!p.uses_heat(), "never pulls, so heat need not be tracked");
    }

    #[test]
    fn data_to_work_pulls_never_sheds() {
        let p = DataToWork;
        assert!(p.uses_heat());
        assert_eq!(p.shed(&sq(100.0, 0.0, 1000)), 0);
        assert!(!p.redirect_spawn(&sq(100.0, 0.0, 1000)));
        assert!(!p.pull_data(&pq(15, 0.0, Some(100.0))), "below threshold");
        assert!(p.pull_data(&pq(16, 100.0, Some(0.0))), "heat alone decides");
    }

    #[test]
    fn adaptive_gates_pulls_on_relative_load() {
        let p = Adaptive;
        assert_eq!(p.shed(&sq(100.0, 0.0, 1000)), 32);
        assert!(p.pull_data(&pq(20, 1.0, Some(50.0))), "owner busier: pull");
        assert!(
            !p.pull_data(&pq(20, 50.0, Some(1.0))),
            "owner quieter: leave it"
        );
        assert!(p.pull_data(&pq(20, 50.0, None)), "unknown owner: pull");
        assert!(!p.pull_data(&pq(3, 1.0, Some(50.0))), "cold object");
    }

    #[test]
    fn config_constructors_and_debug() {
        assert_eq!(BalanceConfig::adaptive().policy.name(), "adaptive");
        assert_eq!(BalanceConfig::work_to_data().policy.name(), "work-to-data");
        assert_eq!(BalanceConfig::data_to_work().policy.name(), "data-to-work");
        let d = format!("{:?}", BalanceConfig::adaptive());
        assert!(d.contains("adaptive") && d.contains("gossip_interval"));
    }
}
