//! Gossip state: what one locality believes about every locality's load.
//!
//! Each balancer round a locality records its own score into its view and
//! sends the *whole view* to one rotating peer as a `__sys/balance_gossip`
//! parcel (riding the ordinary batched transport — gossip pays wire costs
//! like any other message). The receiver merges entry-wise, keeping the
//! freshest round per locality. After `n − 1` rounds every locality has
//! heard from every other at least once, with no barrier and no central
//! coordinator — staleness is bounded by gossip distance, which is the
//! point: decisions degrade gracefully instead of serializing.

use px_wire::{WireError, WireReader, WireWriter};

/// One locality's entry in a [`PeerView`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipEntry {
    /// Load score ([`crate::LoadMonitor::score`]) at `round`.
    pub score: f64,
    /// Balancer round the score was sampled in (freshness arbiter).
    pub round: u64,
}

/// Per-locality beliefs about the whole system's load.
#[derive(Debug, Clone)]
pub struct PeerView {
    entries: Vec<Option<GossipEntry>>,
}

impl PeerView {
    /// Empty view over `n` localities.
    pub fn new(n: usize) -> PeerView {
        PeerView {
            entries: vec![None; n],
        }
    }

    /// Number of localities the view covers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for a zero-locality view (degenerate; never built by the
    /// runtime).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record `score` for `loc` if `round` is strictly fresher than what
    /// the view already holds. Strictness matters: an equal-round gossip
    /// echo must not overwrite local knowledge layered on top of that
    /// round's entry (the optimistic [`PeerView::bump_score`] after a
    /// shed), or the stale pre-shed score would re-invite the dumping the
    /// bump exists to damp. Out-of-range localities are ignored
    /// (malformed gossip must not panic a worker).
    pub fn observe(&mut self, loc: usize, score: f64, round: u64) {
        let Some(slot) = self.entries.get_mut(loc) else {
            return;
        };
        match slot {
            Some(e) if e.round >= round => {}
            _ => *slot = Some(GossipEntry { score, round }),
        }
    }

    /// The known score of `loc`, if any gossip has arrived for it.
    pub fn score_of(&self, loc: usize) -> Option<f64> {
        self.entries.get(loc).copied().flatten().map(|e| e.score)
    }

    /// Optimistically adjust a known entry's score in place, leaving its
    /// round untouched so genuinely fresher gossip still wins. Used after
    /// shedding work *to* a peer: without this, the sender keeps seeing
    /// the peer's pre-shed (stale) score for a full gossip cycle and
    /// over-dumps, and the excess ping-pongs back.
    pub fn bump_score(&mut self, loc: usize, delta: f64) {
        if let Some(Some(e)) = self.entries.get_mut(loc) {
            e.score += delta;
        }
    }

    /// Number of localities with a known entry.
    pub fn known(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// The least-loaded *known* locality other than `exclude`.
    pub fn least_loaded(&self, exclude: usize) -> Option<(usize, f64)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != exclude)
            .filter_map(|(i, e)| e.map(|e| (i, e.score)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Encode every known entry as a gossip payload.
    pub fn encode_gossip(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(4 + self.known() * 18);
        w.put_varint(self.known() as u64);
        for (i, e) in self.entries.iter().enumerate() {
            if let Some(e) = e {
                w.put_u16(i as u16);
                w.put_f64(e.score);
                w.put_varint(e.round);
            }
        }
        w.into_bytes()
    }

    /// Merge a decoded gossip payload into this view.
    pub fn merge(&mut self, entries: &[(u16, GossipEntry)]) {
        for &(loc, e) in entries {
            self.observe(loc as usize, e.score, e.round);
        }
    }
}

/// Decode a gossip payload produced by [`PeerView::encode_gossip`].
pub fn decode_gossip(bytes: &[u8]) -> Result<Vec<(u16, GossipEntry)>, WireError> {
    let mut r = WireReader::new(bytes);
    let n = r.get_varint()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let loc = r.get_u16()?;
        let score = r.get_f64()?;
        let round = r.get_varint()?;
        out.push((loc, GossipEntry { score, round }));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_keeps_freshest_round() {
        let mut v = PeerView::new(3);
        v.observe(1, 5.0, 2);
        v.observe(1, 9.0, 1); // stale: ignored
        assert_eq!(v.score_of(1), Some(5.0));
        v.observe(1, 1.0, 3);
        assert_eq!(v.score_of(1), Some(1.0));
        // Same round is ignored: first knowledge of a round wins, so a
        // gossip echo cannot clobber local updates layered on it.
        v.observe(1, 2.0, 3);
        assert_eq!(v.score_of(1), Some(1.0));
    }

    #[test]
    fn least_loaded_excludes_self_and_unknown() {
        let mut v = PeerView::new(4);
        assert_eq!(v.least_loaded(0), None);
        v.observe(0, 0.0, 1);
        v.observe(2, 7.0, 1);
        v.observe(3, 3.0, 1);
        assert_eq!(v.least_loaded(0), Some((3, 3.0)));
        assert_eq!(v.least_loaded(3), Some((0, 0.0)));
        assert_eq!(v.known(), 3);
    }

    #[test]
    fn bump_score_adjusts_without_touching_round() {
        let mut v = PeerView::new(2);
        v.observe(1, 2.0, 4);
        v.bump_score(1, 10.0);
        assert_eq!(v.score_of(1), Some(12.0));
        // A fresher round still replaces the optimistic estimate…
        v.observe(1, 3.0, 5);
        assert_eq!(v.score_of(1), Some(3.0));
        // …and a stale one still loses to it.
        v.bump_score(1, 10.0);
        v.observe(1, 0.0, 4);
        assert_eq!(v.score_of(1), Some(13.0));
        // Unknown entries stay unknown.
        v.bump_score(0, 5.0);
        assert_eq!(v.score_of(0), None);
    }

    #[test]
    fn out_of_range_observations_ignored() {
        let mut v = PeerView::new(2);
        v.observe(9, 1.0, 1);
        assert_eq!(v.known(), 0);
    }

    #[test]
    fn gossip_roundtrip_merges() {
        let mut a = PeerView::new(4);
        a.observe(0, 2.0, 5);
        a.observe(2, 8.5, 4);
        let bytes = a.encode_gossip();
        let decoded = decode_gossip(&bytes).unwrap();
        let mut b = PeerView::new(4);
        b.observe(2, 1.0, 9); // fresher than the gossiped entry
        b.merge(&decoded);
        assert_eq!(b.score_of(0), Some(2.0));
        assert_eq!(b.score_of(2), Some(1.0), "fresher local entry survives");
        assert_eq!(b.score_of(1), None);
    }

    #[test]
    fn truncated_gossip_is_an_error() {
        let mut v = PeerView::new(2);
        v.observe(0, 1.0, 1);
        let bytes = v.encode_gossip();
        assert!(decode_gossip(&bytes[..bytes.len() - 1]).is_err());
    }
}
