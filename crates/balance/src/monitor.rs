//! Per-locality load monitoring: a fixed-capacity sliding window of
//! [`LoadSample`]s reduced to a single comparable score.
//!
//! The monitor is sampled by the balancer pulse (one sample per gossip
//! round), so the window covers the last `capacity` rounds. Everything is
//! O(1) per sample: running sums are maintained on insert/evict, never
//! recomputed.

use std::collections::VecDeque;

/// One observation of a locality's instantaneous load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSample {
    /// Tasks waiting in the general run queue (injector).
    pub queue_depth: u64,
    /// Worker park events since the previous sample (starvation signal:
    /// parks mean workers found nothing to do).
    pub parks: u64,
    /// Prestaged parcels waiting in the percolation staging buffer.
    pub backlog: u64,
}

/// Sliding-window reduction of [`LoadSample`]s.
#[derive(Debug, Clone)]
pub struct LoadMonitor {
    capacity: usize,
    window: VecDeque<LoadSample>,
    sum_depth: u64,
    sum_parks: u64,
    sum_backlog: u64,
}

impl LoadMonitor {
    /// Monitor keeping the most recent `capacity` samples (≥ 1).
    pub fn new(capacity: usize) -> LoadMonitor {
        let capacity = capacity.max(1);
        LoadMonitor {
            capacity,
            window: VecDeque::with_capacity(capacity),
            sum_depth: 0,
            sum_parks: 0,
            sum_backlog: 0,
        }
    }

    /// Record a sample, evicting the oldest once the window is full.
    pub fn record(&mut self, s: LoadSample) {
        if self.window.len() == self.capacity {
            let old = self
                .window
                .pop_front()
                .expect("window full implies nonempty");
            self.sum_depth -= old.queue_depth;
            self.sum_parks -= old.parks;
            self.sum_backlog -= old.backlog;
        }
        self.sum_depth += s.queue_depth;
        self.sum_parks += s.parks;
        self.sum_backlog += s.backlog;
        self.window.push_back(s);
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True before any sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Mean run-queue depth over the window.
    pub fn mean_queue_depth(&self) -> f64 {
        self.mean(self.sum_depth)
    }

    /// Mean staging backlog over the window.
    pub fn mean_backlog(&self) -> f64 {
        self.mean(self.sum_backlog)
    }

    /// Mean park events per sample (per gossip round). High park rate with
    /// an empty queue is the §2.1 starvation signature.
    pub fn park_rate(&self) -> f64 {
        self.mean(self.sum_parks)
    }

    /// The comparable load score: mean waiting work (queue depth plus
    /// staged backlog). Parks are deliberately *not* subtracted — a parked
    /// locality already scores near zero, and keeping the score a plain
    /// work measure keeps shed arithmetic (move half the difference)
    /// meaningful in task units.
    pub fn score(&self) -> f64 {
        self.mean_queue_depth() + self.mean_backlog()
    }

    /// True when the window shows workers parking with nothing queued —
    /// the locality is starving and a good shed target.
    pub fn starving(&self) -> bool {
        !self.is_empty() && self.park_rate() > 0.0 && self.score() < 1.0
    }

    fn mean(&self, sum: u64) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            sum as f64 / self.window.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(queue_depth: u64, parks: u64, backlog: u64) -> LoadSample {
        LoadSample {
            queue_depth,
            parks,
            backlog,
        }
    }

    #[test]
    fn empty_monitor_scores_zero() {
        let m = LoadMonitor::new(4);
        assert!(m.is_empty());
        assert_eq!(m.score(), 0.0);
        assert_eq!(m.park_rate(), 0.0);
        assert!(!m.starving());
    }

    #[test]
    fn means_over_partial_window() {
        let mut m = LoadMonitor::new(8);
        m.record(s(10, 0, 2));
        m.record(s(20, 4, 0));
        assert_eq!(m.len(), 2);
        assert!((m.mean_queue_depth() - 15.0).abs() < 1e-12);
        assert!((m.mean_backlog() - 1.0).abs() < 1e-12);
        assert!((m.park_rate() - 2.0).abs() < 1e-12);
        assert!((m.score() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut m = LoadMonitor::new(2);
        m.record(s(100, 0, 0));
        m.record(s(10, 0, 0));
        m.record(s(20, 0, 0)); // evicts the 100
        assert_eq!(m.len(), 2);
        assert!((m.mean_queue_depth() - 15.0).abs() < 1e-12);
        // Keep rolling: sums must track eviction exactly.
        for _ in 0..100 {
            m.record(s(7, 1, 3));
        }
        assert!((m.mean_queue_depth() - 7.0).abs() < 1e-12);
        assert!((m.park_rate() - 1.0).abs() < 1e-12);
        assert!((m.mean_backlog() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut m = LoadMonitor::new(0);
        m.record(s(5, 0, 0));
        m.record(s(9, 0, 0));
        assert_eq!(m.len(), 1);
        assert!((m.score() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn starvation_signature() {
        let mut m = LoadMonitor::new(4);
        m.record(s(0, 3, 0));
        assert!(m.starving(), "parking with an empty queue is starvation");
        m.record(s(50, 0, 0));
        assert!(!m.starving(), "a deep queue is not starvation");
    }
}
