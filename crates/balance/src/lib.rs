//! # px-balance — adaptive cross-locality load balancing
//!
//! The ParalleX paper's answer to starvation (§2.1) is message-driven
//! rebalancing rather than global barriers. §2.2: "Threads can suspend or
//! terminate when a remote access is required. If suspending, a local
//! control object is created from its state. If terminating, a parcel is
//! constructed and dispatched to the destination remote data where a new
//! thread is invoked thus moving the work, in essence, to the data." And:
//! "Message-driven computing through parcels allows physical resources
//! (execution locality) to operate via a work queue model."
//!
//! Moving the work to the data is the *default* direction. This crate
//! supplies the runtime-directed half the model implies but the seed
//! runtime left manual: deciding **when work should chase data, when hot
//! data should instead migrate toward its callers, and when an overloaded
//! locality should shed queued work** to a starving peer. It is pure
//! policy and accounting — no runtime dependency — so every decision is
//! unit-testable with plain numbers; `px-core` owns the wiring (gossip
//! parcels, AGAS heat hooks, the balancer pulse).
//!
//! Three pieces:
//!
//! * [`LoadMonitor`] — a cheap sliding window over per-locality
//!   [`LoadSample`]s (queue depth, park rate, parcel backlog) reduced to a
//!   comparable load [`LoadMonitor::score`].
//! * [`PeerView`] — what one locality believes about every other
//!   locality's load, updated by gossip: each round a locality sends its
//!   whole view to one rotating peer, and freshness is arbitrated by round
//!   number. No global barrier, no central coordinator.
//! * [`BalancePolicy`] — the pluggable decision trait with the three
//!   stock implementations [`WorkToData`], [`DataToWork`], and
//!   [`Adaptive`], configured through [`BalanceConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod monitor;
pub mod policy;
pub mod view;

pub use monitor::{LoadMonitor, LoadSample};
pub use policy::{
    Adaptive, BalanceConfig, BalancePolicy, DataToWork, PlacementQuery, ShedQuery, WorkToData,
};
pub use view::{decode_gossip, GossipEntry, PeerView};
