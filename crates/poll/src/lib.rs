//! Minimal readiness polling for the event-loop TCP transport.
//!
//! The build environment is fully offline, so this crate vendors the
//! few kernel interfaces an event loop needs — `epoll`, `eventfd`, and
//! a nonblocking `connect(2)` — as direct `extern "C"` declarations
//! against the platform libc, the same way the other stand-ins under
//! `vendor/` replace their crates.io originals. It is deliberately not
//! a general mio: one [`Poller`] per I/O thread, level-triggered
//! readiness, `u64` tokens chosen by the caller, and a thread-safe
//! [`Poller::wake`] so other threads can interrupt a blocking
//! [`Poller::wait`].
//!
//! Only Linux has a real implementation (the `epoll` family is a Linux
//! ABI). On other platforms every constructor returns
//! `io::ErrorKind::Unsupported`, which the TCP transport surfaces as a
//! loud configuration error — the in-process transport remains fully
//! portable.
//!
//! ## Shape
//!
//! ```no_run
//! use px_poll::{Interest, Poller};
//! use std::time::Duration;
//!
//! let poller = Poller::new().unwrap();
//! # let socket_fd = 0;
//! poller.register(socket_fd, 7, Interest::READABLE).unwrap();
//! let mut events = Vec::new();
//! poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
//! for ev in &events {
//!     if ev.token == px_poll::WAKE_TOKEN { /* another thread called wake() */ }
//!     if ev.readable() { /* fd with token 7 has bytes (or EOF) */ }
//! }
//! ```

/// The token [`Poller::wait`] reports when another thread called
/// [`Poller::wake`]. Reserved: user registrations must not use it.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// What readiness to watch a registration for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with ([`WAKE_TOKEN`] for wakes).
    pub token: u64,
    flags: u32,
}

impl Event {
    /// Bytes (or EOF) are readable without blocking.
    pub fn readable(&self) -> bool {
        self.flags & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0
    }

    /// A write can make progress without blocking (also set on error so
    /// a failed nonblocking connect is observed as writability).
    pub fn writable(&self) -> bool {
        self.flags & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// The peer closed or the fd errored; readers should expect EOF.
    pub fn is_hangup(&self) -> bool {
        self.flags & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0
    }
}

pub use imp::{connect_nonblocking, take_socket_error, Poller};

#[cfg(target_os = "linux")]
mod sys {
    //! The raw Linux ABI: constants, structs, and libc declarations.
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const AF_INET: c_int = 2;
    pub const AF_INET6: c_int = 10;
    pub const SOCK_STREAM: c_int = 1;
    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;
    pub const SOL_SOCKET: c_int = 1;
    pub const SO_ERROR: c_int = 4;
    pub const IPPROTO_TCP: c_int = 6;
    pub const TCP_NODELAY: c_int = 1;

    /// `connect(2)` on a nonblocking socket reports "underway" with this
    /// errno (same value on every Linux arch this repo targets).
    pub const EINPROGRESS: i32 = 115;

    /// The kernel's `struct epoll_event`. x86-64 is the one odd ABI out:
    /// the struct is packed there (a u32 followed by an unaligned u64).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct SockaddrIn {
        pub sin_family: u16,
        pub sin_port: u16, // network byte order
        pub sin_addr: u32, // network byte order
        pub sin_zero: [u8; 8],
    }

    #[repr(C)]
    pub struct SockaddrIn6 {
        pub sin6_family: u16,
        pub sin6_port: u16, // network byte order
        pub sin6_flowinfo: u32,
        pub sin6_addr: [u8; 16],
        pub sin6_scope_id: u32,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn getsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *mut c_void,
            optlen: *mut u32,
        ) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Flag values for [`super::Event`] accessors (never produced here —
    //! the non-Linux build has no poller to produce events).
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{sys, Event, Interest, WAKE_TOKEN};
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::{FromRawFd, RawFd};
    use std::time::Duration;

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance plus an eventfd for cross-thread wakes.
    ///
    /// Level-triggered: an event repeats on every `wait` until its cause
    /// is consumed (bytes read, buffer drained), so a handler that does
    /// partial work is never starved — the natural fit for a transport
    /// with partial-write carry-over.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        wakefd: RawFd,
    }

    // SAFETY: Poller holds two raw fds (plain integers, no interior
    // state); epoll_ctl/epoll_wait/eventfd syscalls are documented
    // thread-safe, so the type may move and be shared across threads.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        /// Create the epoll instance and its wake eventfd.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 and eventfd take flag integers, no
            // pointers; a failed return is surfaced by `cvt`.
            let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
            let wakefd = match cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })
            {
                Ok(fd) => fd,
                Err(e) => {
                    // SAFETY: epfd was created above, is not shared yet,
                    // and this error path is its only close.
                    unsafe { sys::close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, wakefd };
            poller.ctl(sys::EPOLL_CTL_ADD, wakefd, WAKE_TOKEN, Interest::READABLE)?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut flags = sys::EPOLLRDHUP;
            if interest.readable {
                flags |= sys::EPOLLIN;
            }
            if interest.writable {
                flags |= sys::EPOLLOUT;
            }
            let mut ev = sys::EpollEvent {
                events: flags,
                data: token,
            };
            // SAFETY: `ev` is a live stack value for the duration of the
            // call; the fds are integers the kernel validates.
            cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        /// Start watching `fd` with `token` (must not be [`WAKE_TOKEN`]).
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            debug_assert_ne!(token, WAKE_TOKEN, "WAKE_TOKEN is reserved");
            self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Change an existing registration's interest (or token).
        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stop watching `fd`. (Closing an fd deregisters it implicitly;
        /// this is for keeping an fd open but quiet.)
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = sys::EpollEvent { events: 0, data: 0 };
            // SAFETY: `ev` is a live stack value (pre-2.6.9 kernels
            // require a non-null pointer even for DEL).
            cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        /// Block until readiness or `timeout` (`None` = forever), filling
        /// `events`. Wakes from other threads surface as a single event
        /// with [`WAKE_TOKEN`], already drained. A timeout is not an
        /// error: `events` is simply left empty.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let timeout_ms: c_int = match timeout {
                // Round *up* so a 100 µs timer does not spin at 0 ms.
                Some(t) => t
                    .as_millis()
                    .max(u128::from(!t.is_zero()))
                    .min(i32::MAX as u128) as c_int,
                None => -1,
            };
            const MAX_EVENTS: usize = 64;
            let mut raw = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = loop {
                // SAFETY: `raw` holds MAX_EVENTS writable entries — the
                // same count passed as the buffer capacity.
                match cvt(unsafe {
                    sys::epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                        // Retry with the full timeout: callers run their
                        // own timer arithmetic off a deadline anyway.
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            };
            let mut woken = false;
            for ev in &raw[..n] {
                let (flags, token) = (ev.events, ev.data);
                if token == WAKE_TOKEN {
                    self.drain_wake();
                    woken = true;
                    continue;
                }
                events.push(Event { token, flags });
            }
            if woken {
                events.push(Event {
                    token: WAKE_TOKEN,
                    flags: sys::EPOLLIN,
                });
            }
            Ok(())
        }

        /// Interrupt a concurrent [`Poller::wait`] from any thread.
        /// Wakes coalesce: many calls before the next `wait` produce one
        /// event.
        pub fn wake(&self) {
            let one: u64 = 1;
            // A full eventfd counter (EAGAIN) already guarantees a wake.
            // SAFETY: the buffer is the 8 live bytes of `one`, matching
            // the length passed.
            let _ = unsafe {
                sys::write(
                    self.wakefd,
                    &one as *const u64 as *const c_void,
                    std::mem::size_of::<u64>(),
                )
            };
        }

        fn drain_wake(&self) {
            let mut buf = 0u64;
            // SAFETY: the buffer is the 8 writable bytes of `buf`,
            // matching the length passed.
            let _ = unsafe {
                sys::read(
                    self.wakefd,
                    &mut buf as *mut u64 as *mut c_void,
                    std::mem::size_of::<u64>(),
                )
            };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: both fds are owned by this Poller, never exposed,
            // and closed exactly once — here.
            unsafe {
                sys::close(self.wakefd);
                sys::close(self.epfd);
            }
        }
    }

    /// Begin a nonblocking `connect(2)` to `addr`. The returned stream is
    /// nonblocking and usually *not yet connected*: register it for
    /// [`Interest::WRITABLE`] and, on writability, call
    /// [`take_socket_error`] to learn whether the connect succeeded.
    pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
        let domain = match addr {
            SocketAddr::V4(_) => sys::AF_INET,
            SocketAddr::V6(_) => sys::AF_INET6,
        };
        // SAFETY: socket takes integer arguments only; failure is
        // surfaced by `cvt`.
        let fd = cvt(unsafe {
            sys::socket(
                domain,
                sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
                0,
            )
        })?;
        // From here the fd is owned by the stream: any error path drops it.
        // SAFETY: `fd` is a fresh, valid socket owned by no one else;
        // from_raw_fd transfers that ownership to the stream.
        let stream = unsafe { TcpStream::from_raw_fd(fd) };
        let nodelay: c_int = 1;
        // SAFETY: `nodelay` is a live c_int and its exact size is passed.
        let _ = unsafe {
            sys::setsockopt(
                fd,
                sys::IPPROTO_TCP,
                sys::TCP_NODELAY,
                &nodelay as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as u32,
            )
        };
        let ret = match addr {
            SocketAddr::V4(a) => {
                let raw = sys::SockaddrIn {
                    sin_family: sys::AF_INET as u16,
                    sin_port: a.port().to_be(),
                    sin_addr: u32::from_ne_bytes(a.ip().octets()),
                    sin_zero: [0; 8],
                };
                // SAFETY: `raw` is a live, fully-initialized SockaddrIn
                // and its exact size is passed.
                unsafe {
                    sys::connect(
                        fd,
                        &raw as *const sys::SockaddrIn as *const c_void,
                        std::mem::size_of::<sys::SockaddrIn>() as u32,
                    )
                }
            }
            SocketAddr::V6(a) => {
                let raw = sys::SockaddrIn6 {
                    sin6_family: sys::AF_INET6 as u16,
                    sin6_port: a.port().to_be(),
                    sin6_flowinfo: a.flowinfo(),
                    sin6_addr: a.ip().octets(),
                    sin6_scope_id: a.scope_id(),
                };
                // SAFETY: `raw` is a live, fully-initialized SockaddrIn6
                // and its exact size is passed.
                unsafe {
                    sys::connect(
                        fd,
                        &raw as *const sys::SockaddrIn6 as *const c_void,
                        std::mem::size_of::<sys::SockaddrIn6>() as u32,
                    )
                }
            }
        };
        if ret == 0 {
            return Ok(stream); // localhost can connect synchronously
        }
        let err = io::Error::last_os_error();
        match err.raw_os_error() {
            Some(sys::EINPROGRESS) => Ok(stream),
            _ => Err(err),
        }
    }

    /// Consume a socket's pending error (`SO_ERROR`): `Ok(())` means the
    /// async connect completed, `Err` carries why it failed.
    pub fn take_socket_error(stream: &TcpStream) -> io::Result<()> {
        use std::os::unix::io::AsRawFd;
        let mut err: c_int = 0;
        let mut len = std::mem::size_of::<c_int>() as u32;
        // SAFETY: `err` and `len` are live stack slots; `len` starts at
        // `err`'s exact size, as getsockopt requires.
        cvt(unsafe {
            sys::getsockopt(
                stream.as_raw_fd(),
                sys::SOL_SOCKET,
                sys::SO_ERROR,
                &mut err as *mut c_int as *mut c_void,
                &mut len,
            )
        })?;
        if err == 0 {
            Ok(())
        } else {
            Err(io::Error::from_raw_os_error(err))
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Non-Linux stub: constructors fail loudly with `Unsupported`.
    use super::{Event, Interest};
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "px-poll requires Linux (epoll); the in-process transport remains available",
        ))
    }

    /// Stub poller; see the crate docs.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always `Unsupported` off Linux.
        pub fn new() -> io::Result<Poller> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn register(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn reregister(&self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn deregister(&self, _fd: i32) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _events: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn wake(&self) {}
    }

    /// Always `Unsupported` off Linux.
    pub fn connect_nonblocking(_addr: &SocketAddr) -> io::Result<TcpStream> {
        unsupported()
    }

    /// Always `Unsupported` off Linux.
    pub fn take_socket_error(_stream: &TcpStream) -> io::Result<()> {
        unsupported()
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn wait_times_out_empty() {
        let p = Poller::new().unwrap();
        let mut evs = Vec::new();
        let t0 = Instant::now();
        p.wait(&mut evs, Some(Duration::from_millis(20))).unwrap();
        assert!(evs.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn wake_interrupts_wait_and_coalesces() {
        let p = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = p.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            p2.wake();
            p2.wake();
            p2.wake();
        });
        let mut evs = Vec::new();
        p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        h.join().unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token, WAKE_TOKEN);
        // Drained: the next wait sees nothing.
        p.wait(&mut evs, Some(Duration::from_millis(5))).unwrap();
        assert!(evs.is_empty());
    }

    #[test]
    fn readiness_on_a_real_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        let p = Poller::new().unwrap();
        p.register(served.as_raw_fd(), 42, Interest::READABLE)
            .unwrap();
        let mut evs = Vec::new();
        p.wait(&mut evs, Some(Duration::from_millis(50))).unwrap();
        assert!(evs.is_empty(), "no bytes yet");

        client.write_all(b"ping").unwrap();
        p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token, 42);
        assert!(evs[0].readable());
        let mut buf = [0u8; 8];
        assert_eq!(served.read(&mut buf).unwrap(), 4);

        // Level-triggered EOF: hangup keeps reporting readable.
        drop(client);
        p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
        assert!(evs.iter().any(|e| e.token == 42 && e.readable()));
        assert!(evs.iter().any(|e| e.is_hangup()));
    }

    #[test]
    fn nonblocking_connect_completes_via_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(&addr).unwrap();
        let p = Poller::new().unwrap();
        p.register(stream.as_raw_fd(), 1, Interest::WRITABLE)
            .unwrap();
        let mut evs = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            p.wait(&mut evs, Some(Duration::from_millis(100))).unwrap();
            if evs.iter().any(|e| e.token == 1 && e.writable()) {
                break;
            }
            assert!(Instant::now() < deadline, "connect never became writable");
        }
        take_socket_error(&stream).expect("loopback connect succeeds");
        let _ = listener.accept().unwrap();
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_error() {
        // Bind-then-drop: the port is (briefly) free, so connect fails.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let Ok(stream) = connect_nonblocking(&addr) else {
            return; // synchronous refusal is also a valid outcome
        };
        let p = Poller::new().unwrap();
        p.register(stream.as_raw_fd(), 1, Interest::WRITABLE)
            .unwrap();
        let mut evs = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            p.wait(&mut evs, Some(Duration::from_millis(100))).unwrap();
            if evs.iter().any(|e| e.token == 1 && e.writable()) {
                break;
            }
            assert!(Instant::now() < deadline, "refusal never surfaced");
        }
        take_socket_error(&stream).expect_err("connect to a dead port must fail");
    }

    #[test]
    fn deregister_silences_an_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (served, _) = listener.accept().unwrap();
        let p = Poller::new().unwrap();
        p.register(served.as_raw_fd(), 9, Interest::READABLE)
            .unwrap();
        p.deregister(served.as_raw_fd()).unwrap();
        client.write_all(b"x").unwrap();
        let mut evs = Vec::new();
        p.wait(&mut evs, Some(Duration::from_millis(50))).unwrap();
        assert!(evs.is_empty(), "deregistered fd must not report");
    }
}
