//! Barnes–Hut N-body: the paper's canonical "trees (N-body codes)"
//! irregular workload.
//!
//! A 3-D octree is built over the bodies; forces are evaluated with the
//! standard Barnes–Hut multipole acceptance criterion (open a cell when
//! `size / distance > theta`, otherwise use its center of mass). The tree
//! is deliberately a plain indexed arena so distributed drivers can ship
//! subtrees by slicing node ranges.

use serde::{Deserialize, Serialize};

/// Gravitational softening to avoid singular forces.
pub const SOFTENING: f64 = 1e-3;

/// A point mass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
}

impl Body {
    /// Body at rest.
    pub fn at(pos: [f64; 3], mass: f64) -> Body {
        Body {
            pos,
            vel: [0.0; 3],
            mass,
        }
    }
}

/// Generate `n` bodies in a Plummer-like cluster, deterministic in `seed`.
pub fn make_cluster(n: usize, seed: u64) -> Vec<Body> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Rejection-sample a ball, bias density toward the center.
            loop {
                let p = [
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ];
                let r2: f64 = p.iter().map(|x| x * x).sum();
                if r2 <= 1.0 {
                    let shrink = 0.3 + 0.7 * r2.sqrt();
                    break Body::at(
                        [p[0] * shrink, p[1] * shrink, p[2] * shrink],
                        1.0 / n as f64,
                    );
                }
            }
        })
        .collect()
}

/// One octree node in the arena.
#[derive(Debug, Clone)]
pub struct Node {
    /// Cell center.
    pub center: [f64; 3],
    /// Cell half-width.
    pub half: f64,
    /// Total mass under this node.
    pub mass: f64,
    /// Center of mass under this node.
    pub com: [f64; 3],
    /// Child arena indices (0 = none; the root is index 0 so 0 can double
    /// as the null sentinel for children).
    pub children: [u32; 8],
    /// Body index when this is a leaf holding exactly one body.
    pub body: Option<u32>,
    /// Number of bodies under this node.
    pub count: u32,
}

impl Node {
    fn empty(center: [f64; 3], half: f64) -> Node {
        Node {
            center,
            half,
            mass: 0.0,
            com: [0.0; 3],
            children: [0; 8],
            body: None,
            count: 0,
        }
    }

    /// True if the node has no children (holds ≤ 1 body).
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(|&c| c == 0)
    }
}

/// The octree: an arena of nodes, root at index 0.
#[derive(Debug, Clone)]
pub struct Octree {
    /// Node arena; `nodes[0]` is the root.
    pub nodes: Vec<Node>,
}

impl Octree {
    /// Build over `bodies`.
    pub fn build(bodies: &[Body]) -> Octree {
        // Bounding cube.
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for b in bodies {
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                lo[d] = lo[d].min(b.pos[d]);
                hi[d] = hi[d].max(b.pos[d]);
            }
        }
        let center = [
            (lo[0] + hi[0]) / 2.0,
            (lo[1] + hi[1]) / 2.0,
            (lo[2] + hi[2]) / 2.0,
        ];
        let half = (0..3)
            .map(|d| (hi[d] - lo[d]) / 2.0)
            .fold(1e-12f64, f64::max)
            * 1.0001;
        let mut tree = Octree {
            nodes: vec![Node::empty(center, half)],
        };
        for (i, b) in bodies.iter().enumerate() {
            tree.insert(0, i as u32, bodies, b.pos);
        }
        tree.summarize(0, bodies);
        tree
    }

    fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
        let mut o = 0;
        for d in 0..3 {
            if p[d] >= center[d] {
                o |= 1 << d;
            }
        }
        o
    }

    fn child_center(center: &[f64; 3], half: f64, o: usize) -> [f64; 3] {
        let q = half / 2.0;
        [
            center[0] + if o & 1 != 0 { q } else { -q },
            center[1] + if o & 2 != 0 { q } else { -q },
            center[2] + if o & 4 != 0 { q } else { -q },
        ]
    }

    fn insert(&mut self, node: u32, body_idx: u32, bodies: &[Body], pos: [f64; 3]) {
        let ni = node as usize;
        self.nodes[ni].count += 1;
        if self.nodes[ni].is_leaf() {
            match self.nodes[ni].body {
                None => {
                    self.nodes[ni].body = Some(body_idx);
                    return;
                }
                Some(prev) => {
                    // Split: push the resident body down, then continue
                    // inserting the new one.
                    // Degenerate case: coincident points would recurse
                    // forever; stop splitting below a tiny cell.
                    if self.nodes[ni].half < 1e-12 {
                        // Keep as multi-body leaf: drop resident marker; the
                        // summarize pass will use counts and masses only.
                        return;
                    }
                    self.nodes[ni].body = None;
                    let ppos = bodies[prev as usize].pos;
                    let o = Self::octant(&self.nodes[ni].center, &ppos);
                    let child = self.ensure_child(node, o);
                    // Re-insert without re-counting this subtree's root.
                    self.insert_nocount_root(child, prev, bodies, ppos);
                }
            }
        }
        let o = Self::octant(&self.nodes[ni].center, &pos);
        let child = self.ensure_child(node, o);
        self.insert_nocount_root(child, body_idx, bodies, pos);
    }

    fn insert_nocount_root(&mut self, node: u32, body_idx: u32, bodies: &[Body], pos: [f64; 3]) {
        self.insert(node, body_idx, bodies, pos);
    }

    fn ensure_child(&mut self, node: u32, o: usize) -> u32 {
        let ni = node as usize;
        if self.nodes[ni].children[o] != 0 {
            return self.nodes[ni].children[o];
        }
        let c = Self::child_center(&self.nodes[ni].center, self.nodes[ni].half, o);
        let half = self.nodes[ni].half / 2.0;
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::empty(c, half));
        self.nodes[ni].children[o] = idx;
        idx
    }

    fn summarize(&mut self, node: u32, bodies: &[Body]) -> (f64, [f64; 3]) {
        let ni = node as usize;
        if self.nodes[ni].is_leaf() {
            if let Some(b) = self.nodes[ni].body {
                let b = &bodies[b as usize];
                self.nodes[ni].mass = b.mass;
                self.nodes[ni].com = b.pos;
            }
            return (self.nodes[ni].mass, self.nodes[ni].com);
        }
        let mut mass = 0.0;
        let mut com = [0.0; 3];
        let children = self.nodes[ni].children;
        for &c in children.iter().filter(|&&c| c != 0) {
            let (m, cm) = self.summarize(c, bodies);
            mass += m;
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                com[d] += m * cm[d];
            }
        }
        if mass > 0.0 {
            for d in com.iter_mut() {
                *d /= mass;
            }
        }
        self.nodes[ni].mass = mass;
        self.nodes[ni].com = com;
        (mass, com)
    }

    /// Barnes–Hut force on a body at `pos` (mass excluded from itself by
    /// the softened kernel; self-interaction contributes ~0).
    pub fn force_on(&self, pos: [f64; 3], theta: f64) -> [f64; 3] {
        let mut acc = [0.0; 3];
        let mut stack = vec![0u32];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n as usize];
            if node.count == 0 || node.mass == 0.0 {
                continue;
            }
            let dx = [
                node.com[0] - pos[0],
                node.com[1] - pos[1],
                node.com[2] - pos[2],
            ];
            let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + SOFTENING * SOFTENING;
            let d = d2.sqrt();
            if node.is_leaf() || (node.half * 2.0) / d < theta {
                let f = node.mass / (d2 * d);
                for k in 0..3 {
                    acc[k] += f * dx[k];
                }
            } else {
                for &c in node.children.iter().filter(|&&c| c != 0) {
                    stack.push(c);
                }
            }
        }
        acc
    }

    /// Nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a tree with no nodes (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Direct O(N²) force evaluation (reference for correctness checks).
pub fn direct_forces(bodies: &[Body]) -> Vec<[f64; 3]> {
    let n = bodies.len();
    let mut acc = vec![[0.0; 3]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = [
                bodies[j].pos[0] - bodies[i].pos[0],
                bodies[j].pos[1] - bodies[i].pos[1],
                bodies[j].pos[2] - bodies[i].pos[2],
            ];
            let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + SOFTENING * SOFTENING;
            let d = d2.sqrt();
            let f = bodies[j].mass / (d2 * d);
            for k in 0..3 {
                acc[i][k] += f * dx[k];
            }
        }
    }
    acc
}

/// One leapfrog step for all bodies given accelerations.
pub fn step(bodies: &mut [Body], acc: &[[f64; 3]], dt: f64) {
    for (b, a) in bodies.iter_mut().zip(acc.iter()) {
        #[allow(clippy::needless_range_loop)]
        for k in 0..3 {
            b.vel[k] += a[k] * dt;
            b.pos[k] += b.vel[k] * dt;
        }
    }
}

/// Total kinetic + potential energy (slow; diagnostics only).
pub fn total_energy(bodies: &[Body]) -> f64 {
    let mut e = 0.0;
    for (i, b) in bodies.iter().enumerate() {
        let v2: f64 = b.vel.iter().map(|v| v * v).sum();
        e += 0.5 * b.mass * v2;
        for other in bodies.iter().skip(i + 1) {
            let d2: f64 = b
                .pos
                .iter()
                .zip(other.pos.iter())
                .map(|(a, c)| (a - c) * (a - c))
                .sum::<f64>()
                + SOFTENING * SOFTENING;
            e -= b.mass * other.mass / d2.sqrt();
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_is_deterministic_and_bounded() {
        let a = make_cluster(100, 7);
        let b = make_cluster(100, 7);
        assert_eq!(a.len(), 100);
        assert_eq!(a[17].pos, b[17].pos);
        for body in &a {
            let r2: f64 = body.pos.iter().map(|x| x * x).sum();
            assert!(r2 <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn tree_counts_all_bodies() {
        let bodies = make_cluster(500, 1);
        let tree = Octree::build(&bodies);
        assert_eq!(tree.nodes[0].count, 500);
        let total_mass: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((tree.nodes[0].mass - total_mass).abs() < 1e-9);
    }

    #[test]
    fn root_com_matches_direct() {
        let bodies = make_cluster(200, 3);
        let tree = Octree::build(&bodies);
        let m: f64 = bodies.iter().map(|b| b.mass).sum();
        let mut com = [0.0; 3];
        for b in &bodies {
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                com[d] += b.mass * b.pos[d] / m;
            }
        }
        #[allow(clippy::needless_range_loop)]
        for d in 0..3 {
            assert!((tree.nodes[0].com[d] - com[d]).abs() < 1e-9, "dim {d}");
        }
    }

    #[test]
    fn bh_force_approximates_direct() {
        let bodies = make_cluster(300, 11);
        let tree = Octree::build(&bodies);
        let direct = direct_forces(&bodies);
        // Relative RMS error at theta = 0.5 should be small.
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, b) in bodies.iter().enumerate() {
            let bh = tree.force_on(b.pos, 0.5);
            for k in 0..3 {
                num += (bh[k] - direct[i][k]).powi(2);
                den += direct[i][k].powi(2);
            }
        }
        let rel = (num / den).sqrt();
        assert!(rel < 0.05, "BH relative error too high: {rel}");
    }

    #[test]
    fn theta_zero_equals_direct() {
        // theta = 0 forces full opening: identical to direct sum (up to
        // self-interaction, excluded in direct but ~0 in BH due to
        // softening and zero distance).
        let bodies = make_cluster(50, 5);
        let tree = Octree::build(&bodies);
        let direct = direct_forces(&bodies);
        for (i, b) in bodies.iter().enumerate() {
            let bh = tree.force_on(b.pos, 0.0);
            for k in 0..3 {
                assert!(
                    (bh[k] - direct[i][k]).abs() < 1e-6,
                    "body {i} dim {k}: {} vs {}",
                    bh[k],
                    direct[i][k]
                );
            }
        }
    }

    #[test]
    fn coincident_bodies_do_not_hang() {
        let bodies = vec![Body::at([0.5; 3], 1.0); 4];
        let tree = Octree::build(&bodies);
        assert_eq!(tree.nodes[0].count, 4);
    }

    #[test]
    fn step_integrates() {
        let mut bodies = vec![Body::at([0.0; 3], 1.0)];
        step(&mut bodies, &[[1.0, 0.0, 0.0]], 0.5);
        assert!((bodies[0].vel[0] - 0.5).abs() < 1e-12);
        assert!((bodies[0].pos[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn energy_sane() {
        let bodies = make_cluster(50, 2);
        let e = total_energy(&bodies);
        assert!(e.is_finite());
        assert!(e < 0.0, "bound cluster should have negative energy: {e}");
    }
}
