//! Synthetic kernels for the quantitative experiments.
//!
//! * [`spin_for_ns`] / [`SpinCalibration`] — calibrated busy-work standing
//!   in for "compute" with a controllable grain size (E2, E3, E4).
//! * [`sleep_for_ns`] — latency-bound grain (blocking wait, no CPU) for
//!   placement experiments that must not depend on physical core count
//!   (E12).
//! * [`lognormal_work`] — per-task service times with tunable coefficient
//!   of variation, the imbalance knob for the LCO-vs-barrier experiment
//!   (E3).
//! * [`zipf_assign`] — skewed task→locality assignment for the starvation
//!   experiment (E11).
//! * [`LocalityStream`] — synthetic address streams with a tunable
//!   temporal-locality parameter θ for the Gilgamesh two-modality
//!   experiment (E7): θ→1 reuses a small working set (cache-friendly,
//!   dataflow-accelerator territory), θ→0 sprays uniformly (PIM
//!   territory).

use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Busy-wait for approximately `ns` nanoseconds.
///
/// Uses a time check every few iterations; granularity is tens of
/// nanoseconds, accurate enough for grains ≥ 1 µs (what the experiments
/// use).
#[inline]
pub fn spin_for_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

/// Block for approximately `ns` nanoseconds without consuming CPU.
///
/// The latency-bound counterpart of [`spin_for_ns`]: it models a task
/// whose grain is dominated by waiting on a remote resource (memory,
/// storage, a device) rather than by computation. Because sleeping
/// workers overlap freely, placement effects (starvation, diffusion,
/// migration) show up in wall-clock makespan even on hosts with fewer
/// physical cores than simulated localities — which is why the E12
/// balancer experiment uses this grain.
#[inline]
pub fn sleep_for_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    std::thread::sleep(std::time::Duration::from_nanos(ns));
}

/// Measured cost model of `spin_for_ns` on this host (sanity checks in
/// experiments: confirms the grain knob is honest).
#[derive(Debug, Clone, Copy)]
pub struct SpinCalibration {
    /// Measured nanoseconds for a requested 10 µs spin.
    pub measured_10us_ns: u64,
}

impl SpinCalibration {
    /// Run the calibration (takes ~1 ms).
    pub fn measure() -> SpinCalibration {
        // Warm up.
        spin_for_ns(1_000);
        let t0 = Instant::now();
        for _ in 0..100 {
            spin_for_ns(10_000);
        }
        let total = t0.elapsed().as_nanos() as u64;
        SpinCalibration {
            measured_10us_ns: total / 100,
        }
    }

    /// Relative error vs the requested 10 µs.
    pub fn relative_error(&self) -> f64 {
        (self.measured_10us_ns as f64 - 10_000.0).abs() / 10_000.0
    }
}

/// `n` lognormal service times with mean ≈ `mean_ns` and coefficient of
/// variation `cv` (cv = 0 gives exactly-constant work). Deterministic in
/// `seed`.
pub fn lognormal_work(n: usize, mean_ns: f64, cv: f64, seed: u64) -> Vec<u64> {
    assert!(mean_ns > 0.0 && cv >= 0.0);
    if cv == 0.0 {
        return vec![mean_ns as u64; n];
    }
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    // For lognormal: cv² = exp(σ²) − 1; mean = exp(μ + σ²/2).
    let sigma2 = (1.0 + cv * cv).ln();
    let sigma = sigma2.sqrt();
    let mu = mean_ns.ln() - sigma2 / 2.0;
    (0..n)
        .map(|_| {
            // Box–Muller.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mu + sigma * z).exp() as u64
        })
        .collect()
}

/// Assign `n` tasks to `k` bins with Zipf(`s`) skew over bins
/// (s = 0 → uniform; s = 1 → classic Zipf). Deterministic in `seed`.
pub fn zipf_assign(n: usize, k: usize, s: f64, seed: u64) -> Vec<u32> {
    assert!(k >= 1);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    // CDF over bins.
    let weights: Vec<f64> = (1..=k).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(k);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            cdf.iter().position(|&c| u <= c).unwrap_or(k - 1) as u32
        })
        .collect()
}

/// Synthetic address-stream generator with tunable temporal locality.
///
/// With probability θ the next address is drawn from a small hot working
/// set (LRU-ordered reuse); with probability 1−θ it is uniform over the
/// full address space (and is promoted into the working set).
#[derive(Debug, Clone)]
pub struct LocalityStream {
    /// Probability of reusing the working set.
    pub theta: f64,
    /// Full address-space size.
    pub space: u64,
    working: Vec<u64>,
    cap: usize,
    rng: rand::rngs::SmallRng,
}

impl LocalityStream {
    /// New stream: `theta` in 0..=1, `space` addresses, working set of
    /// `working_set` entries.
    pub fn new(theta: f64, space: u64, working_set: usize, seed: u64) -> LocalityStream {
        assert!((0.0..=1.0).contains(&theta));
        assert!(space > 0 && working_set > 0);
        LocalityStream {
            theta,
            space,
            working: Vec::with_capacity(working_set),
            cap: working_set,
            rng: rand::rngs::SmallRng::seed_from_u64(seed),
        }
    }

    /// Next address in the stream.
    pub fn next_addr(&mut self) -> u64 {
        let reuse = !self.working.is_empty() && self.rng.gen_range(0.0..1.0) < self.theta;
        if reuse {
            // Prefer recently used entries (front = most recent).
            let idx =
                (self.rng.gen_range(0.0f64..1.0).powi(2) * self.working.len() as f64) as usize;
            let idx = idx.min(self.working.len() - 1);
            let a = self.working.remove(idx);
            self.working.insert(0, a);
            a
        } else {
            let a = self.rng.gen_range(0..self.space);
            self.working.insert(0, a);
            if self.working.len() > self.cap {
                self.working.pop();
            }
            a
        }
    }

    /// Generate `n` addresses.
    pub fn take_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_addr()).collect()
    }
}

/// Fraction of accesses in `stream` that hit an ideal LRU cache of
/// `cache_lines` entries (the temporal-locality metric reported by E7).
pub fn lru_hit_rate(stream: &[u64], cache_lines: usize) -> f64 {
    if stream.is_empty() {
        return 0.0;
    }
    let mut cache: Vec<u64> = Vec::with_capacity(cache_lines);
    let mut hits = 0usize;
    for &a in stream {
        if let Some(pos) = cache.iter().position(|&c| c == a) {
            cache.remove(pos);
            cache.insert(0, a);
            hits += 1;
        } else {
            cache.insert(0, a);
            if cache.len() > cache_lines {
                cache.pop();
            }
        }
    }
    hits as f64 / stream.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_is_roughly_calibrated() {
        let c = SpinCalibration::measure();
        assert!(
            c.relative_error() < 0.5,
            "spin calibration off by {:.0}%: {:?}",
            c.relative_error() * 100.0,
            c
        );
    }

    #[test]
    fn lognormal_mean_and_spread() {
        let w = lognormal_work(20_000, 10_000.0, 1.0, 42);
        let mean = w.iter().sum::<u64>() as f64 / w.len() as f64;
        assert!((mean - 10_000.0).abs() / 10_000.0 < 0.1, "mean off: {mean}");
        let var = w.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / w.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.2, "cv off: {cv}");
    }

    #[test]
    fn lognormal_cv_zero_is_constant() {
        let w = lognormal_work(100, 5_000.0, 0.0, 1);
        assert!(w.iter().all(|&x| x == 5_000));
    }

    #[test]
    fn zipf_skew_orders_bins() {
        let a = zipf_assign(100_000, 8, 1.2, 3);
        let mut counts = [0usize; 8];
        for &b in &a {
            counts[b as usize] += 1;
        }
        // Bin 0 should dominate bin 7 heavily at s = 1.2.
        assert!(counts[0] > 4 * counts[7], "counts: {counts:?}");
        // Uniform at s = 0.
        let u = zipf_assign(100_000, 8, 0.0, 3);
        let mut ucounts = [0usize; 8];
        for &b in &u {
            ucounts[b as usize] += 1;
        }
        let max = *ucounts.iter().max().unwrap() as f64;
        let min = *ucounts.iter().min().unwrap() as f64;
        assert!(max / min < 1.2, "uniform counts: {ucounts:?}");
    }

    #[test]
    fn locality_stream_theta_controls_hit_rate() {
        let mut hot = LocalityStream::new(0.95, 1 << 20, 64, 9);
        let mut cold = LocalityStream::new(0.05, 1 << 20, 64, 9);
        let hot_rate = lru_hit_rate(&hot.take_vec(20_000), 256);
        let cold_rate = lru_hit_rate(&cold.take_vec(20_000), 256);
        assert!(hot_rate > 0.8, "hot stream should hit cache: {hot_rate:.3}");
        assert!(
            cold_rate < 0.2,
            "cold stream should miss cache: {cold_rate:.3}"
        );
        assert!(hot_rate > cold_rate + 0.5);
    }

    #[test]
    fn locality_stream_monotone_in_theta() {
        let rates: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&t| {
                let mut s = LocalityStream::new(t, 1 << 18, 64, 5);
                lru_hit_rate(&s.take_vec(10_000), 256)
            })
            .collect();
        for w in rates.windows(2) {
            assert!(
                w[1] >= w[0] - 0.05,
                "hit rate should rise with theta: {rates:?}"
            );
        }
    }

    #[test]
    fn lru_hit_rate_bounds() {
        assert_eq!(lru_hit_rate(&[], 16), 0.0);
        let all_same = vec![5u64; 100];
        assert!(lru_hit_rate(&all_same, 4) > 0.98);
    }
}
