//! Adaptive mesh refinement: the paper's "directed graphs (adaptive mesh
//! refinement …)" irregular workload.
//!
//! A 2-D quadtree mesh refines where an error estimator exceeds a
//! threshold and coarsens where it falls well below, producing a
//! time-varying directed dependency graph: each patch's update depends on
//! its neighbors at the same or adjacent level. The mesh intentionally
//! tracks patches in a flat arena with explicit parent/child links so a
//! distributed driver can partition patches across localities and express
//! the neighbor dependencies as LCO dataflow.

use serde::{Deserialize, Serialize};

/// A square patch of the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Patch {
    /// Refinement level (0 = root).
    pub level: u8,
    /// Patch coordinates within its level's grid (x, y).
    pub ix: u32,
    /// Y coordinate.
    pub iy: u32,
    /// Arena index of the parent (self for the root).
    pub parent: u32,
    /// True if the patch is currently a leaf (active compute patch).
    pub active: bool,
}

impl Patch {
    /// Patch center in the unit square.
    pub fn center(&self) -> (f64, f64) {
        let n = (1u32 << self.level) as f64;
        ((self.ix as f64 + 0.5) / n, (self.iy as f64 + 0.5) / n)
    }

    /// Patch width.
    pub fn width(&self) -> f64 {
        1.0 / (1u32 << self.level) as f64
    }
}

/// The adaptive mesh: a quadtree forest over the unit square.
#[derive(Debug, Clone)]
pub struct Mesh {
    /// All patches ever created (including deactivated interior ones).
    pub patches: Vec<Patch>,
    /// Indices of currently active (leaf) patches.
    pub active: Vec<u32>,
    /// Maximum refinement level allowed.
    pub max_level: u8,
}

impl Mesh {
    /// Root-only mesh.
    pub fn new(max_level: u8) -> Mesh {
        let root = Patch {
            level: 0,
            ix: 0,
            iy: 0,
            parent: 0,
            active: true,
        };
        Mesh {
            patches: vec![root],
            active: vec![0],
            max_level,
        }
    }

    /// Number of active patches.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// One refinement pass: refine active patches whose estimated error
    /// exceeds `threshold` (splitting into four children), up to
    /// `max_level`. The estimator is the max of `error` over a 4×4
    /// interior sample grid — point-sampling only the center would miss
    /// features narrower than a coarse patch. Returns the number of
    /// splits performed.
    pub fn refine_where<F: Fn(f64, f64) -> f64>(&mut self, error: F, threshold: f64) -> usize {
        let mut splits = 0;
        let current: Vec<u32> = self.active.clone();
        for &pi in &current {
            let p = self.patches[pi as usize];
            if !p.active || p.level >= self.max_level {
                continue;
            }
            if Self::patch_error(&p, &error) > threshold {
                self.split(pi);
                splits += 1;
            }
        }
        splits
    }

    /// Max of `error` over a 4×4 interior sample grid of the patch.
    pub fn patch_error<F: Fn(f64, f64) -> f64>(p: &Patch, error: &F) -> f64 {
        let w = p.width();
        let x0 = p.ix as f64 * w;
        let y0 = p.iy as f64 * w;
        let mut max = f64::NEG_INFINITY;
        for sy in 0..4 {
            for sx in 0..4 {
                let x = x0 + w * (0.125 + 0.25 * sx as f64);
                let y = y0 + w * (0.125 + 0.25 * sy as f64);
                max = max.max(error(x, y));
            }
        }
        max
    }

    fn split(&mut self, pi: u32) {
        let p = self.patches[pi as usize];
        debug_assert!(p.active);
        self.patches[pi as usize].active = false;
        for dy in 0..2u32 {
            for dx in 0..2u32 {
                let child = Patch {
                    level: p.level + 1,
                    ix: p.ix * 2 + dx,
                    iy: p.iy * 2 + dy,
                    parent: pi,
                    active: true,
                };
                let idx = self.patches.len() as u32;
                self.patches.push(child);
                self.active.push(idx);
            }
        }
        self.active.retain(|&a| a != pi);
    }

    /// Refine to convergence (or until `max_passes`), returning the number
    /// of passes executed.
    pub fn refine_to_convergence<F: Fn(f64, f64) -> f64>(
        &mut self,
        error: F,
        threshold: f64,
        max_passes: usize,
    ) -> usize {
        for pass in 0..max_passes {
            if self.refine_where(&error, threshold) == 0 {
                return pass;
            }
        }
        max_passes
    }

    /// Active-patch neighbor pairs (edges of the dependency graph). Two
    /// active patches are neighbors when their squares share an edge
    /// segment; levels may differ by any amount (the driver decides how to
    /// interpolate).
    pub fn neighbor_edges(&self) -> Vec<(u32, u32)> {
        // O(A²) with early box rejection — fine at experiment scale; a
        // production mesh would bucket by space-filling curve.
        let mut edges = Vec::new();
        let act = &self.active;
        for (i, &a) in act.iter().enumerate() {
            let pa = self.patches[a as usize];
            let (ax0, ay0) = (pa.ix as f64 * pa.width(), pa.iy as f64 * pa.width());
            let (ax1, ay1) = (ax0 + pa.width(), ay0 + pa.width());
            for &b in act.iter().skip(i + 1) {
                let pb = self.patches[b as usize];
                let (bx0, by0) = (pb.ix as f64 * pb.width(), pb.iy as f64 * pb.width());
                let (bx1, by1) = (bx0 + pb.width(), by0 + pb.width());
                let eps = 1e-12;
                let x_touch = (ax1 - bx0).abs() < eps || (bx1 - ax0).abs() < eps;
                let y_overlap = ay0 < by1 - eps && by0 < ay1 - eps;
                let y_touch = (ay1 - by0).abs() < eps || (by1 - ay0).abs() < eps;
                let x_overlap = ax0 < bx1 - eps && bx0 < ax1 - eps;
                if (x_touch && y_overlap) || (y_touch && x_overlap) {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Partition active patches across `n` owners by Morton (Z-order)
    /// position — spatially compact, the locality-affinity mapping the
    /// driver uses ("affinity semantics", §2.1).
    pub fn partition(&self, n: usize) -> Vec<Vec<u32>> {
        assert!(n > 0);
        let mut keyed: Vec<(u64, u32)> = self
            .active
            .iter()
            .map(|&a| {
                let p = &self.patches[a as usize];
                // Normalize coordinates to the deepest level for a shared
                // Morton space.
                let shift = (self.max_level - p.level) as u32;
                (morton2(p.ix << shift, p.iy << shift), a)
            })
            .collect();
        keyed.sort_unstable();
        let mut parts = vec![Vec::new(); n];
        let per = keyed.len().div_ceil(n);
        for (i, (_, a)) in keyed.into_iter().enumerate() {
            parts[(i / per).min(n - 1)].push(a);
        }
        parts
    }
}

/// Interleave a 32-bit pair into a Morton code.
pub fn morton2(x: u32, y: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = v as u64;
        v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
        v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

/// A moving-feature error field: a Gaussian ridge along a circle whose
/// phase advances with `t`, so the refinement pattern is time-varying
/// (the "time-varying" part of the §2.1 requirement).
pub fn moving_front_error(t: f64) -> impl Fn(f64, f64) -> f64 {
    move |x, y| {
        let cx = 0.5 + 0.3 * (t).cos();
        let cy = 0.5 + 0.3 * (t).sin();
        let d2 = (x - cx).powi(2) + (y - cy).powi(2);
        (-d2 / 0.02).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_mesh() {
        let m = Mesh::new(4);
        assert_eq!(m.active_count(), 1);
        assert_eq!(m.patches[0].center(), (0.5, 0.5));
    }

    #[test]
    fn uniform_refinement_quadruples() {
        let mut m = Mesh::new(3);
        // Error above threshold everywhere refines every active patch.
        m.refine_where(|_, _| 1.0, 0.5);
        assert_eq!(m.active_count(), 4);
        m.refine_where(|_, _| 1.0, 0.5);
        assert_eq!(m.active_count(), 16);
    }

    #[test]
    fn max_level_respected() {
        let mut m = Mesh::new(2);
        let passes = m.refine_to_convergence(|_, _| 1.0, 0.5, 10);
        assert!(passes <= 3);
        assert_eq!(m.active_count(), 16); // 4^2
        assert!(m.patches.iter().all(|p| p.level <= 2));
    }

    #[test]
    fn localized_refinement_is_sparse() {
        let mut m = Mesh::new(6);
        let err = moving_front_error(0.0);
        m.refine_to_convergence(&err, 0.2, 10);
        let full = 4usize.pow(6);
        assert!(
            m.active_count() < full / 4,
            "refinement should be localized: {} of {}",
            m.active_count(),
            full
        );
        assert!(m.active_count() > 16, "the moving front must be tracked");
    }

    #[test]
    fn active_partition_is_exact_cover() {
        let mut m = Mesh::new(5);
        let err = moving_front_error(1.0);
        m.refine_to_convergence(&err, 0.2, 10);
        let parts = m.partition(4);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, m.active_count());
        let mut all: Vec<u32> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), m.active_count());
    }

    #[test]
    fn neighbor_edges_symmetric_coverage() {
        let mut m = Mesh::new(3);
        m.refine_where(|_, _| 1.0, 0.5); // 4 patches
        let edges = m.neighbor_edges();
        // 2x2 grid: 4 shared edges.
        assert_eq!(edges.len(), 4, "edges: {edges:?}");
    }

    #[test]
    fn cross_level_neighbors_detected() {
        let mut m = Mesh::new(3);
        m.refine_where(|_, _| 1.0, 0.5); // 4 patches
                                         // Refine only one patch again: error = 1 strictly inside its box.
        let target = m.active[0];
        let p = m.patches[target as usize];
        let w = p.width();
        let (x0, y0) = (p.ix as f64 * w, p.iy as f64 * w);
        m.refine_where(
            move |x, y| {
                if x > x0 && x < x0 + w && y > y0 && y < y0 + w {
                    1.0
                } else {
                    0.0
                }
            },
            0.5,
        );
        assert_eq!(m.active_count(), 7);
        let edges = m.neighbor_edges();
        // Each fine patch bordering a coarse patch must appear.
        assert!(edges.len() >= 8, "edges: {}", edges.len());
    }

    #[test]
    fn morton_orders_locally() {
        assert_eq!(morton2(0, 0), 0);
        assert_eq!(morton2(1, 0), 1);
        assert_eq!(morton2(0, 1), 2);
        assert_eq!(morton2(1, 1), 3);
        assert!(morton2(2, 2) > morton2(1, 1));
    }

    #[test]
    fn time_varying_pattern_moves() {
        let mut m0 = Mesh::new(5);
        m0.refine_to_convergence(moving_front_error(0.0), 0.2, 10);
        let mut m1 = Mesh::new(5);
        m1.refine_to_convergence(moving_front_error(3.0), 0.2, 10);
        // Same feature size → similar count, different location.
        let c0: Vec<(u32, u32, u8)> = m0
            .active
            .iter()
            .map(|&a| {
                let p = m0.patches[a as usize];
                (p.ix, p.iy, p.level)
            })
            .collect();
        let c1: Vec<(u32, u32, u8)> = m1
            .active
            .iter()
            .map(|&a| {
                let p = m1.patches[a as usize];
                (p.ix, p.iy, p.level)
            })
            .collect();
        assert_ne!(c0, c1, "refinement pattern should move with t");
    }
}
