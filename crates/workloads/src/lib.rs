//! # px-workloads — workload generators for the ParalleX experiments
//!
//! §2.1 of the paper demands "direct support for lightweight processing of
//! irregular time-varying sparse data structure parallelism such as that
//! for trees (N-body codes), directed graphs (adaptive mesh refinement,
//! semantic nets), and particle in cell (magneto hydro dynamics)". This
//! crate implements exactly those workloads — plus the synthetic kernels
//! used to sweep latency, imbalance, and temporal locality — as plain
//! algorithms with **no runtime dependency**, so the ParalleX runtime, the
//! CSP baseline, and the Gilgamesh simulator can all drive the same code.
//!
//! | Module | Workload | Used by |
//! |---|---|---|
//! | [`barnes_hut`] | 3-D octree N-body (trees) | E8, `nbody_barnes_hut` example |
//! | [`amr`] | error-driven adaptive mesh refinement (directed graphs) | E8, `amr_refinement` example |
//! | [`pic`] | 1-D electrostatic particle-in-cell | E8, `pic_plasma` example |
//! | [`graphs`] | scale-free semantic-net generator + BFS | E8 extension |
//! | [`synth`] | imbalance distributions, Zipf skew, temporal-locality streams, calibrated spin-work | E2, E3, E4, E7, E11 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amr;
pub mod barnes_hut;
pub mod graphs;
pub mod pic;
pub mod synth;
