//! 1-D electrostatic particle-in-cell: the paper's "particle in cell
//! (magneto hydro dynamics)" workload class.
//!
//! The classic periodic two-stream/Landau setup: particles deposit charge
//! onto a grid (cloud-in-cell weighting), the field solves Poisson's
//! equation on the grid (periodic, via direct integration of E from the
//! charge density), and particles gather the field and push (leapfrog).
//! The scatter step is the irregular part — particle → cell writes follow
//! the particles, so a distributed driver gets the same gather/scatter
//! communication pattern MHD PIC codes fight with.

use serde::{Deserialize, Serialize};

/// A charged particle (unit charge-to-mass ratio).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    /// Position in `[0, length)`.
    pub x: f64,
    /// Velocity.
    pub v: f64,
}

/// The PIC system state.
#[derive(Debug, Clone)]
pub struct PicState {
    /// Particles.
    pub particles: Vec<Particle>,
    /// Domain length.
    pub length: f64,
    /// Grid cells.
    pub cells: usize,
    /// Charge density per cell (last deposit).
    pub rho: Vec<f64>,
    /// Electric field per cell (last solve).
    pub efield: Vec<f64>,
}

impl PicState {
    /// Two-stream instability initial condition: two counter-streaming
    /// beams with a small seeded sinusoidal perturbation.
    pub fn two_stream(n: usize, cells: usize, drift: f64, seed: u64) -> PicState {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let length = 2.0 * std::f64::consts::PI;
        let particles = (0..n)
            .map(|i| {
                let x0 = (i as f64 + 0.5) / n as f64 * length;
                let x = (x0 + 0.001 * (2.0 * x0).sin()).rem_euclid(length);
                let beam = if i % 2 == 0 { drift } else { -drift };
                let v = beam + rng.gen_range(-0.05..0.05);
                Particle { x, v }
            })
            .collect();
        PicState {
            particles,
            length,
            cells,
            rho: vec![0.0; cells],
            efield: vec![0.0; cells],
        }
    }

    /// Cell width.
    pub fn dx(&self) -> f64 {
        self.length / self.cells as f64
    }

    /// Deposit charge with cloud-in-cell (linear) weighting. Background
    /// ions neutralize the mean.
    pub fn deposit(&mut self) {
        let dx = self.dx();
        self.rho.iter_mut().for_each(|r| *r = 0.0);
        let w = 1.0 / self.particles.len() as f64 * self.cells as f64;
        for p in &self.particles {
            let xc = p.x / dx;
            let i0 = xc.floor() as usize % self.cells;
            let frac = xc - xc.floor();
            let i1 = (i0 + 1) % self.cells;
            self.rho[i0] += w * (1.0 - frac);
            self.rho[i1] += w * frac;
        }
        // Neutralizing background: subtract the mean.
        let mean = self.rho.iter().sum::<f64>() / self.cells as f64;
        for r in self.rho.iter_mut() {
            *r -= mean;
        }
    }

    /// Solve for E on the periodic grid: dE/dx = rho, ∑E = 0.
    pub fn solve_field(&mut self) {
        let dx = self.dx();
        let mut e = 0.0;
        for (i, &r) in self.rho.iter().enumerate() {
            e += r * dx;
            self.efield[i] = e;
        }
        let mean = self.efield.iter().sum::<f64>() / self.cells as f64;
        for e in self.efield.iter_mut() {
            *e -= mean;
        }
    }

    /// Gather E at a particle position (linear interpolation).
    pub fn field_at(&self, x: f64) -> f64 {
        let dx = self.dx();
        let xc = x / dx;
        let i0 = xc.floor() as usize % self.cells;
        let frac = xc - xc.floor();
        let i1 = (i0 + 1) % self.cells;
        self.efield[i0] * (1.0 - frac) + self.efield[i1] * frac
    }

    /// One full PIC step (deposit → solve → push).
    pub fn step(&mut self, dt: f64) {
        self.deposit();
        self.solve_field();
        let length = self.length;
        // Electrons: acceleration = -E.
        let fields: Vec<f64> = self.particles.iter().map(|p| self.field_at(p.x)).collect();
        for (p, &e) in self.particles.iter_mut().zip(fields.iter()) {
            p.v -= e * dt;
            p.x = (p.x + p.v * dt).rem_euclid(length);
        }
    }

    /// Electrostatic field energy `∑ E² dx / 2`.
    pub fn field_energy(&self) -> f64 {
        let dx = self.dx();
        self.efield.iter().map(|e| e * e).sum::<f64>() * dx / 2.0
    }

    /// Kinetic energy of the particles (per unit weight).
    pub fn kinetic_energy(&self) -> f64 {
        self.particles.iter().map(|p| 0.5 * p.v * p.v).sum::<f64>() / self.particles.len() as f64
    }

    /// Partition particle indices into `n` spatial slabs (the distributed
    /// decomposition: slab owner also owns the corresponding grid chunk).
    pub fn partition(&self, n: usize) -> Vec<Vec<u32>> {
        let mut parts = vec![Vec::new(); n];
        let w = self.length / n as f64;
        for (i, p) in self.particles.iter().enumerate() {
            let s = ((p.x / w) as usize).min(n - 1);
            parts[s].push(i as u32);
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_conserves_charge() {
        let mut s = PicState::two_stream(10_000, 64, 1.0, 4);
        s.deposit();
        let total: f64 = s.rho.iter().sum();
        assert!(total.abs() < 1e-9, "net charge must be ~0: {total}");
    }

    #[test]
    fn field_has_zero_mean() {
        let mut s = PicState::two_stream(5_000, 32, 1.0, 4);
        s.deposit();
        s.solve_field();
        let mean: f64 = s.efield.iter().sum::<f64>() / s.efield.len() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn quiet_plasma_stays_quiet() {
        // No drift and no perturbation → field energy stays tiny.
        let mut s = PicState::two_stream(8_192, 64, 0.0, 9);
        for p in s.particles.iter_mut() {
            p.v = 0.0;
        }
        let mut max_e = 0.0f64;
        for _ in 0..50 {
            s.step(0.05);
            max_e = max_e.max(s.field_energy());
        }
        assert!(max_e < 1e-3, "quiet start should not self-heat: {max_e}");
    }

    #[test]
    fn two_stream_instability_grows() {
        let mut s = PicState::two_stream(16_384, 64, 1.0, 7);
        s.deposit();
        s.solve_field();
        let e0 = s.field_energy().max(1e-12);
        for _ in 0..200 {
            s.step(0.05);
        }
        let e1 = s.field_energy();
        assert!(
            e1 > e0 * 10.0,
            "two-stream field energy should grow: {e0} → {e1}"
        );
    }

    #[test]
    fn positions_stay_periodic() {
        let mut s = PicState::two_stream(1_000, 32, 2.0, 3);
        for _ in 0..100 {
            s.step(0.1);
        }
        for p in &s.particles {
            assert!(p.x >= 0.0 && p.x < s.length);
        }
    }

    #[test]
    fn partition_covers_all_particles() {
        let s = PicState::two_stream(1_000, 32, 1.0, 5);
        let parts = s.partition(4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1_000);
        // Uniform positions → roughly even slabs.
        for part in &parts {
            assert!(part.len() > 150, "slab too small: {}", part.len());
        }
    }

    #[test]
    fn gather_interpolates_between_cells() {
        let mut s = PicState::two_stream(100, 4, 0.0, 1);
        s.efield = vec![0.0, 1.0, 0.0, -1.0];
        let dx = s.dx();
        let mid01 = s.field_at(0.5 * dx + 0.0);
        assert!((mid01 - 0.5).abs() < 1e-9, "{mid01}");
    }
}
