//! Scale-free directed graphs: the paper's "semantic nets" workload, used
//! for graph-traversal experiments over the global name space.
//!
//! The generator is preferential-attachment (Barabási–Albert flavored):
//! heavy-tailed degree distribution, which is what makes traversal load
//! balancing hard and message-driven work queues shine.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Compressed sparse row directed graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    /// Row offsets, length `n + 1`.
    pub offsets: Vec<u32>,
    /// Edge targets.
    pub targets: Vec<u32>,
}

impl Graph {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let a = self.offsets[v as usize] as usize;
        let b = self.offsets[v as usize + 1] as usize;
        &self.targets[a..b]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut counts = vec![0u32; n + 1];
        for &(s, _) in edges {
            counts[s as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; edges.len()];
        for &(s, t) in edges {
            targets[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
        }
        Graph { offsets, targets }
    }

    /// Preferential-attachment generator: `n` vertices, each new vertex
    /// attaching `m` out-edges biased toward high-degree targets.
    /// Deterministic in `seed`; edges are made bidirectional (two directed
    /// edges) so BFS reaches the whole component.
    pub fn scale_free(n: usize, m: usize, seed: u64) -> Graph {
        assert!(n > m && m >= 1);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(2 * n * m);
        // Repeated-endpoints list: sampling uniformly from it implements
        // degree-proportional choice.
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
        // Seed clique over m+1 vertices.
        for i in 0..=(m as u32) {
            for j in 0..i {
                edges.push((i, j));
                edges.push((j, i));
                endpoints.push(i);
                endpoints.push(j);
            }
        }
        for v in (m as u32 + 1)..(n as u32) {
            let mut chosen = Vec::with_capacity(m);
            while chosen.len() < m {
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                if t != v && !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            for &t in &chosen {
                edges.push((v, t));
                edges.push((t, v));
                endpoints.push(v);
                endpoints.push(t);
            }
        }
        Graph::from_edges(n, &edges)
    }

    /// Sequential BFS from `root`: returns levels (`u32::MAX` =
    /// unreached). Reference for the distributed traversal.
    pub fn bfs(&self, root: u32) -> Vec<u32> {
        let mut level = vec![u32::MAX; self.len()];
        level[root as usize] = 0;
        let mut frontier = vec![root];
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &t in self.neighbors(v) {
                    if level[t as usize] == u32::MAX {
                        level[t as usize] = depth;
                        next.push(t);
                    }
                }
            }
            frontier = next;
        }
        level
    }

    /// Partition vertices across `n` owners by hashing (the default
    /// distribution for graph experiments — deliberately affinity-blind,
    /// which is what stresses remote access).
    pub fn partition_hash(&self, n: usize) -> Vec<u32> {
        (0..self.len() as u32)
            .map(|v| (v.wrapping_mul(0x9e37_79b9) >> 16) % n as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_construction() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn scale_free_shape() {
        let g = Graph::scale_free(2000, 3, 42);
        assert_eq!(g.len(), 2000);
        // Heavy tail: the max degree should far exceed the mean.
        let mean = g.edges() as f64 / g.len() as f64;
        let max = (0..g.len() as u32).map(|v| g.degree(v)).max().unwrap();
        assert!(
            (max as f64) > 5.0 * mean,
            "expected heavy tail: max {max}, mean {mean}"
        );
    }

    #[test]
    fn scale_free_deterministic() {
        let a = Graph::scale_free(500, 2, 7);
        let b = Graph::scale_free(500, 2, 7);
        assert_eq!(a.targets, b.targets);
        let c = Graph::scale_free(500, 2, 8);
        assert_ne!(a.targets, c.targets);
    }

    #[test]
    fn bfs_reaches_everything() {
        let g = Graph::scale_free(1000, 2, 3);
        let levels = g.bfs(0);
        assert!(levels.iter().all(|&l| l != u32::MAX), "graph is connected");
        assert_eq!(levels[0], 0);
        // Small-world: diameter should be modest.
        let max = levels.iter().max().unwrap();
        assert!(*max < 20, "diameter too large: {max}");
    }

    #[test]
    fn bfs_levels_are_shortest_paths() {
        // Path graph 0-1-2-3 (bidirectional).
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        assert_eq!(g.bfs(0), vec![0, 1, 2, 3]);
        assert_eq!(g.bfs(2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn partition_is_total() {
        let g = Graph::scale_free(300, 2, 1);
        let owners = g.partition_hash(5);
        assert_eq!(owners.len(), 300);
        assert!(owners.iter().all(|&o| o < 5));
        // All owners used.
        let mut seen = [false; 5];
        for &o in &owners {
            seen[o as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
