//! Percolation directives.
//!
//! §2.3: LITL-X supports "percolation of program instruction blocks and
//! data at the site of the intended computation, to eliminate waiting for
//! remote accesses, which are determined at run time prior to actual
//! block execution."
//!
//! A [`Directive`] bundles the pieces the HTMT-style percolation model
//! prestages: the *task* (an action), its *data* (the serialized
//! arguments, carried in the parcel), and the *site* (an accelerator
//! locality). Issue it with [`Directive::issue`] and the destination's
//! staging buffer takes delivery; the precious resource executes without
//! a single remote access.

use px_core::action::Action;
use px_core::error::PxResult;
use px_core::gid::{Gid, LocalityId};
use px_core::parcel::Continuation;
use px_core::percolation;
use px_core::runtime::{Ctx, Runtime};

/// A percolation directive: stage action `A` at a site before execution.
#[derive(Debug, Clone)]
pub struct Directive<A: Action> {
    /// Destination (precious-resource) locality.
    pub site: LocalityId,
    /// Object the staged action applies to (often the site's root).
    pub target: Gid,
    /// Arguments to prestage alongside the task.
    pub args: A::Args,
    /// What happens with the result.
    pub cont: Continuation,
}

impl<A: Action> Directive<A> {
    /// Directive for the site's locality root (pure compute block).
    pub fn block(site: LocalityId, args: A::Args) -> Directive<A> {
        Directive {
            site,
            target: Gid::locality_root(site),
            args,
            cont: Continuation::none(),
        }
    }

    /// Attach a continuation for the block's result.
    pub fn with_continuation(mut self, cont: Continuation) -> Directive<A> {
        self.cont = cont;
        self
    }

    /// Issue from inside a PX-thread.
    pub fn issue(self, ctx: &mut Ctx<'_>) -> PxResult<()> {
        percolation::percolate_from_ctx::<A>(ctx, self.site, self.target, &self.args, self.cont)
    }

    /// Issue from the external driver.
    pub fn issue_from_driver(self, rt: &Runtime) -> PxResult<()> {
        percolation::percolate_from_driver::<A>(rt, self.site, self.target, &self.args, self.cont)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_core::prelude::*;

    struct HeavyKernel;
    impl Action for HeavyKernel {
        const NAME: &'static str = "litlx-test/heavy_kernel";
        type Args = Vec<u64>;
        type Out = u64;
        fn execute(ctx: &mut Ctx<'_>, _t: Gid, data: Vec<u64>) -> u64 {
            // All data arrived with the parcel: no remote access here.
            assert_eq!(ctx.here(), LocalityId(1), "runs at the staged site");
            data.iter().sum()
        }
    }

    #[test]
    fn directive_executes_at_site_with_data() {
        let rt = RuntimeBuilder::new(Config::small(2, 1).with_accelerator(LocalityId(1)))
            .register::<HeavyKernel>()
            .build()
            .unwrap();
        let out = rt.new_future::<u64>(LocalityId(0));
        Directive::<HeavyKernel>::block(LocalityId(1), vec![1, 2, 3, 4])
            .with_continuation(Continuation::set(out.gid()))
            .issue_from_driver(&rt)
            .unwrap();
        assert_eq!(out.wait(&rt).unwrap(), 10);
        // The task executed from the staging buffer.
        let stats = rt.stats();
        assert_eq!(stats.localities[1].staged_executed, 1);
        rt.shutdown();
    }

    #[test]
    fn directive_from_thread() {
        let rt = RuntimeBuilder::new(Config::small(2, 1).with_accelerator(LocalityId(1)))
            .register::<HeavyKernel>()
            .build()
            .unwrap();
        let out = rt.new_future::<u64>(LocalityId(0));
        let out_gid = out.gid();
        rt.spawn_at(LocalityId(0), move |ctx| {
            Directive::<HeavyKernel>::block(LocalityId(1), vec![10, 20])
                .with_continuation(Continuation::set(out_gid))
                .issue(ctx)
                .unwrap();
        });
        assert_eq!(out.wait(&rt).unwrap(), 30);
        rt.shutdown();
    }
}
