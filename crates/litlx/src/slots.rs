//! EARTH-style synchronization slots and asynchronous calls.
//!
//! The EARTH model (Theobald '99, cited as the lineage of this construct
//! in §2.3) attaches a *sync slot* to every fiber: a counter initialized
//! to the number of inputs the fiber waits for; producers `signal` the
//! slot and the fiber fires when the count drains. Here a slot wraps an
//! and-gate LCO, so slots are first-class, addressable, and usable from
//! any locality.

use px_core::action::Action;
use px_core::gid::Gid;
use px_core::lco::FutureRef;
use px_core::parcel::Continuation;
use px_core::prelude::Value;
use px_core::runtime::Ctx;
use serde::{de::DeserializeOwned, Serialize};

/// A sync slot: fires after `count` signals.
///
/// Cloneable and sendable: producers carry a copy, the consumer registers
/// the continuation with [`SyncSlot::on_complete`].
#[derive(Debug, Clone, Copy)]
pub struct SyncSlot {
    gate: Gid,
}

impl SyncSlot {
    /// Create a slot expecting `count` signals (created at the calling
    /// thread's locality, like an EARTH frame slot).
    pub fn new(ctx: &mut Ctx<'_>, count: u64) -> SyncSlot {
        SyncSlot {
            gate: ctx.new_and_gate(count),
        }
    }

    /// The underlying and-gate LCO.
    pub fn gid(&self) -> Gid {
        self.gate
    }

    /// Signal the slot (from any locality).
    pub fn signal(&self, ctx: &mut Ctx<'_>) {
        ctx.trigger_value(self.gate, Value::unit());
    }

    /// A continuation specifier that signals this slot — attach it to a
    /// parcel so action completion counts as the signal.
    pub fn signal_continuation(&self) -> Continuation {
        Continuation::set(self.gate)
    }

    /// Run `f` when the slot drains (suspends the continuation as a
    /// depleted thread; never blocks).
    pub fn on_complete(
        &self,
        ctx: &mut Ctx<'_>,
        f: impl FnOnce(&mut Ctx<'_>, Value) + Send + 'static,
    ) {
        ctx.when_ready(self.gate, f);
    }
}

/// Launch an asynchronous action whose completion signals `slot` — the
/// EARTH `INVOKE(…, slot)` idiom.
pub fn async_invoke<A: Action>(
    ctx: &mut Ctx<'_>,
    target: Gid,
    args: A::Args,
    slot: &SyncSlot,
) -> px_core::error::PxResult<()> {
    ctx.send::<A>(target, args, slot.signal_continuation())
}

/// Launch an asynchronous action and get a future for its result — the
/// Cilk-flavored spawn/sync idiom the paper also cites.
pub fn async_call<A: Action>(
    ctx: &mut Ctx<'_>,
    target: Gid,
    args: A::Args,
) -> px_core::error::PxResult<FutureRef<A::Out>>
where
    A::Out: Serialize + DeserializeOwned,
{
    ctx.call::<A>(target, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_core::prelude::*;

    struct Add;
    impl Action for Add {
        const NAME: &'static str = "litlx-test/add";
        type Args = (u64, u64);
        type Out = u64;
        fn execute(_ctx: &mut Ctx<'_>, _t: Gid, (a, b): (u64, u64)) -> u64 {
            a + b
        }
    }

    fn rt() -> Runtime {
        RuntimeBuilder::new(Config::small(2, 1))
            .register::<Add>()
            .build()
            .unwrap()
    }

    #[test]
    fn slot_fires_after_n_signals() {
        let rt = rt();
        let done = rt.new_future::<bool>(LocalityId(0));
        let done_gid = done.gid();
        rt.spawn_at(LocalityId(0), move |ctx| {
            let slot = SyncSlot::new(ctx, 4);
            for _ in 0..4 {
                let s = slot;
                ctx.spawn(move |ctx| s.signal(ctx));
            }
            slot.on_complete(ctx, move |ctx, _| {
                ctx.trigger(done_gid, &true).unwrap();
            });
        });
        assert!(done.wait(&rt).unwrap());
        rt.shutdown();
    }

    #[test]
    fn async_invoke_counts_completions() {
        let rt = rt();
        let done = rt.new_future::<u8>(LocalityId(0));
        let done_gid = done.gid();
        rt.spawn_at(LocalityId(0), move |ctx| {
            let slot = SyncSlot::new(ctx, 3);
            for i in 0..3u64 {
                async_invoke::<Add>(ctx, Gid::locality_root(LocalityId(1)), (i, i), &slot).unwrap();
            }
            slot.on_complete(ctx, move |ctx, _| {
                ctx.trigger(done_gid, &7u8).unwrap();
            });
        });
        assert_eq!(done.wait(&rt).unwrap(), 7);
        rt.shutdown();
    }

    #[test]
    fn async_call_returns_value() {
        let rt = rt();
        let out = rt.new_future::<u64>(LocalityId(0));
        let out_gid = out.gid();
        rt.spawn_at(LocalityId(0), move |ctx| {
            let fut = async_call::<Add>(ctx, Gid::locality_root(LocalityId(1)), (20, 22)).unwrap();
            ctx.when_future(fut, move |ctx, v| {
                ctx.trigger(out_gid, &v).unwrap();
            });
        });
        assert_eq!(out.wait(&rt).unwrap(), 42);
        rt.shutdown();
    }

    #[test]
    fn cross_locality_signal() {
        let rt = rt();
        let done = rt.new_future::<bool>(LocalityId(0));
        let done_gid = done.gid();
        rt.spawn_at(LocalityId(0), move |ctx| {
            let slot = SyncSlot::new(ctx, 2);
            for dest in [LocalityId(0), LocalityId(1)] {
                let s = slot;
                ctx.spawn_at(dest, move |ctx| s.signal(ctx));
            }
            slot.on_complete(ctx, move |ctx, _| {
                ctx.trigger(done_gid, &true).unwrap();
            });
        });
        assert!(done.wait(&rt).unwrap());
        rt.shutdown();
    }
}
