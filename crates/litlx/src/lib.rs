//! # px-litlx — LITL-X, the programmer-facing subset of ParalleX
//!
//! §2.3 of the paper: "We are working on a prototype programming API,
//! LITL-X (pronounced 'little-X') … which provides the application
//! programmers with a powerful set of semantic constructs to organize
//! parallel computations in a way that hides/manages latency and limits
//! the effects of overhead." LITL-X extends a TNT-like coarse-grain thread
//! layer with four families of constructs, each implemented here on the
//! `px-core` runtime:
//!
//! | Paper construct | Module | What it is here |
//! |---|---|---|
//! | "launch and manage asynchronous calls … (EARTH … or Cilk)" | [`slots`] | [`slots::SyncSlot`] counters + [`slots::async_invoke`] / [`slots::async_call`] |
//! | "Percolation of program instruction blocks and data" | [`percolate`] | Percolation directives targeting accelerator localities |
//! | "Synchronization constructs for data-flow style operations" | [`dataflow`] | Dataflow template builders over LCOs |
//! | "Atomic sections … using a weak memory consistency model, such as location consistency" | [`atomic`] | [`atomic::AtomicRegion`] + location-consistent [`atomic::LcCell`] |
//!
//! "LITL-X is not intended as a final programming language for end users,
//! but rather a logical testbed to prototype a set of promising concepts
//! and to test their impact on system performance and efficiency" — the
//! overhead of every construct is measured by experiment E9
//! (`e9_litlx_overhead`).
//!
//! ## Example: fork–join with a sync slot
//!
//! ```
//! use px_core::prelude::*;
//! use px_litlx::slots::SyncSlot;
//!
//! let rt = RuntimeBuilder::new(Config::small(2, 1)).build().unwrap();
//! let done = rt.new_future::<u64>(LocalityId(0));
//! let done_gid = done.gid();
//!
//! rt.spawn_at(LocalityId(0), move |ctx| {
//!     // Three async child threads; the slot fires when all signal.
//!     let slot = SyncSlot::new(ctx, 3);
//!     for i in 0..3u16 {
//!         let s = slot.clone();
//!         let dest = LocalityId(i % 2);
//!         ctx.spawn_at(dest, move |ctx| {
//!             // ... child work ...
//!             s.signal(ctx);
//!         });
//!     }
//!     slot.on_complete(ctx, move |ctx, _| {
//!         ctx.trigger(done_gid, &42u64).unwrap();
//!     });
//! });
//! assert_eq!(done.wait(&rt).unwrap(), 42);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod dataflow;
pub mod percolate;
pub mod slots;
pub mod threads;

pub use atomic::{AtomicRegion, LcCell};
pub use slots::{async_call, async_invoke, SyncSlot};
pub use threads::CoarseThreads;
