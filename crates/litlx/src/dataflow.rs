//! Dataflow-style synchronization constructs.
//!
//! §2.3: "Synchronization constructs for data-flow style operations,
//! leveraging our past studies on EARTH." A [`DataflowNode`] is a typed
//! builder over the core dataflow-template LCO: declare `n` inputs and a
//! combining function, wire producers to slots, and suspend a consumer on
//! the output — "true asynchronous value oriented flow control" (§2.2).

use px_core::action::Value;
use px_core::error::PxResult;
use px_core::gid::Gid;
use px_core::runtime::Ctx;
use serde::{de::DeserializeOwned, Serialize};
use std::marker::PhantomData;

/// A typed dataflow template: `n` inputs of `In`, one output of `Out`.
pub struct DataflowNode<In, Out> {
    gid: Gid,
    _in: PhantomData<fn(In)>,
    _out: PhantomData<fn() -> Out>,
}

impl<In, Out> Clone for DataflowNode<In, Out> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<In, Out> Copy for DataflowNode<In, Out> {}

impl<In, Out> std::fmt::Debug for DataflowNode<In, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DataflowNode({})", self.gid)
    }
}

impl<In, Out> DataflowNode<In, Out>
where
    In: Serialize + DeserializeOwned + Send + 'static,
    Out: Serialize + DeserializeOwned + Send + 'static,
{
    /// Create a node with `n` input slots; when all are filled,
    /// `combine` produces the output value and the node fires.
    pub fn new(
        ctx: &mut Ctx<'_>,
        n: usize,
        combine: impl Fn(Vec<In>) -> Out + Send + 'static,
    ) -> DataflowNode<In, Out> {
        let gid = ctx.new_dataflow(
            n,
            Box::new(move |slots: &mut [Option<Value>]| {
                let inputs: Vec<In> = slots
                    .iter_mut()
                    .map(|s| {
                        s.take()
                            .expect("all slots filled at fire time")
                            .decode::<In>()
                            .expect("dataflow input type mismatch")
                    })
                    .collect();
                Value::encode(&combine(inputs)).expect("dataflow output must encode")
            }),
        );
        DataflowNode {
            gid,
            _in: PhantomData,
            _out: PhantomData,
        }
    }

    /// The underlying LCO.
    pub fn gid(&self) -> Gid {
        self.gid
    }

    /// Fill input slot `idx` (from any locality).
    pub fn put(&self, ctx: &mut Ctx<'_>, idx: u32, value: &In) -> PxResult<()> {
        ctx.set_slot(self.gid, idx, value)
    }

    /// Suspend `f` on the node's output.
    pub fn on_fire(&self, ctx: &mut Ctx<'_>, f: impl FnOnce(&mut Ctx<'_>, Out) + Send + 'static) {
        ctx.when_ready(self.gid, move |ctx, v| {
            if let Ok(out) = v.decode::<Out>() {
                f(ctx, out);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_core::prelude::*;

    #[test]
    fn three_input_sum_fires_once_filled() {
        let rt = RuntimeBuilder::new(Config::small(2, 1)).build().unwrap();
        let out = rt.new_future::<u64>(LocalityId(0));
        let out_gid = out.gid();
        rt.spawn_at(LocalityId(0), move |ctx| {
            let node = DataflowNode::<u64, u64>::new(ctx, 3, |ins| ins.iter().sum());
            node.on_fire(ctx, move |ctx, total| {
                ctx.trigger(out_gid, &total).unwrap();
            });
            // Producers on both localities, filling out of order.
            let n = node;
            ctx.spawn_at(LocalityId(1), move |ctx| {
                n.put(ctx, 2, &300).unwrap();
            });
            let n = node;
            ctx.spawn(move |ctx| {
                n.put(ctx, 0, &1).unwrap();
                n.put(ctx, 1, &20).unwrap();
            });
        });
        assert_eq!(out.wait(&rt).unwrap(), 321);
        rt.shutdown();
    }

    #[test]
    fn chained_nodes() {
        // a -> b: b's input is a's output.
        let rt = RuntimeBuilder::new(Config::small(1, 1)).build().unwrap();
        let out = rt.new_future::<String>(LocalityId(0));
        let out_gid = out.gid();
        rt.spawn_at(LocalityId(0), move |ctx| {
            let b = DataflowNode::<u64, String>::new(ctx, 1, |ins| format!("result={}", ins[0]));
            let a = DataflowNode::<u64, u64>::new(ctx, 2, |ins| ins[0] * ins[1]);
            b.on_fire(ctx, move |ctx, s| {
                ctx.trigger(out_gid, &s).unwrap();
            });
            a.on_fire(ctx, move |ctx, v| {
                b.put(ctx, 0, &v).unwrap();
            });
            a.put(ctx, 0, &6).unwrap();
            a.put(ctx, 1, &7).unwrap();
        });
        assert_eq!(out.wait(&rt).unwrap(), "result=42");
        rt.shutdown();
    }
}
