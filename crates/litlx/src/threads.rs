//! TNT-style coarse-grain threads.
//!
//! §2.3: "A version of LITL-X will be developed by extending the TNT — a
//! coarse-grain thread layer" (TiNy Threads, the Cyclops-64 thread
//! virtual machine). TNT's model is a fixed set of coarse threads bound
//! to hardware thread units, with explicit termination detection. Here a
//! [`CoarseThreads`] group binds a set of long-lived logical threads to
//! localities round-robin and detects group termination with a parallel
//! process — the PX-threads underneath stay ephemeral, which is exactly
//! the LITL-X layering (coarse API, fine-grain substrate).

use px_core::gid::LocalityId;
use px_core::process::ProcessRef;
use px_core::runtime::{Ctx, Runtime};

/// A group of coarse threads with collective termination detection.
#[derive(Debug, Clone, Copy)]
pub struct CoarseThreads {
    proc: ProcessRef,
}

impl CoarseThreads {
    /// Launch `n` coarse threads, distributed round-robin over all
    /// localities; `body(tid, ctx)` runs as each thread's top frame.
    pub fn launch<F>(rt: &Runtime, n: usize, body: F) -> CoarseThreads
    where
        F: Fn(usize, &mut Ctx<'_>) + Send + Sync + 'static,
    {
        let proc = rt.create_process(LocalityId(0));
        let body = std::sync::Arc::new(body);
        let locs = rt.num_localities();
        for tid in 0..n {
            let body = body.clone();
            let dest = LocalityId((tid % locs) as u16);
            proc.spawn_at(rt, dest, move |ctx| body(tid, ctx));
        }
        proc.finish_root(rt);
        CoarseThreads { proc }
    }

    /// The process accounting the group.
    pub fn process(&self) -> ProcessRef {
        self.proc
    }

    /// Block the driver until every coarse thread — and every PX-thread or
    /// parcel they spawned — has completed (group quiescence).
    pub fn join(&self, rt: &Runtime) -> px_core::error::PxResult<()> {
        self.proc.wait(rt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_core::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_threads_run_and_join() {
        let rt = RuntimeBuilder::new(Config::small(3, 1)).build().unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let group = CoarseThreads::launch(&rt, 10, move |_tid, _ctx| {
            r.fetch_add(1, Ordering::SeqCst);
        });
        group.join(&rt).unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        rt.shutdown();
    }

    #[test]
    fn join_waits_for_nested_spawns() {
        let rt = RuntimeBuilder::new(Config::small(2, 2)).build().unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let group = CoarseThreads::launch(&rt, 4, move |_tid, ctx| {
            // Each coarse thread forks 5 children; the group must not
            // report quiescence until they finish too.
            for _ in 0..5 {
                let r = r.clone();
                ctx.spawn(move |_ctx| {
                    r.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        group.join(&rt).unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 20);
        rt.shutdown();
    }

    #[test]
    fn threads_spread_over_localities() {
        let rt = RuntimeBuilder::new(Config::small(3, 1)).build().unwrap();
        let seen = Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        let s = seen.clone();
        let group = CoarseThreads::launch(&rt, 9, move |_tid, ctx| {
            s.lock().insert(ctx.here().0);
        });
        group.join(&rt).unwrap();
        assert_eq!(seen.lock().len(), 3, "threads must cover all localities");
        rt.shutdown();
    }
}
