//! Atomic sections under a weak (location-consistency) memory model.
//!
//! §2.3: LITL-X adds "atomic sections, a parallel programming construct
//! that can simplify the use of fine-grained synchronization, while
//! delivering scalable parallelism by using a weak memory consistency
//! model, such as location consistency" (Gao & Sarkar's LC model, paper
//! reference \[5\]; "analyzable atomic sections" is reference \[12\]).
//!
//! Two pieces:
//!
//! * [`AtomicRegion`] — a named critical section built on a 1-permit
//!   semaphore LCO. Entry is *split-phase*: `enter` suspends the
//!   continuation until the permit arrives (never spins, never blocks a
//!   worker).
//! * [`LcCell<T>`] — a location-consistent cell. Each atomic section
//!   performs **acquire** (pull the current value from the cell's home
//!   locality), runs the mutation on a private copy, then **release**
//!   (publish the copy back). Between acquire/release pairs there is *no*
//!   coherence traffic, and observers that don't synchronize may see stale
//!   values — exactly LC's contract, and what distinguishes it from the
//!   sequentially-consistent mutex the baseline uses.

use px_core::error::PxResult;
use px_core::gid::{Gid, LocalityId};
use px_core::runtime::{Ctx, Runtime};
use serde::{de::DeserializeOwned, Serialize};
use std::marker::PhantomData;

/// A named critical section (1-permit semaphore LCO).
#[derive(Debug, Clone, Copy)]
pub struct AtomicRegion {
    sem: Gid,
}

impl AtomicRegion {
    /// Create a region homed at `loc`.
    pub fn new(rt: &Runtime, loc: LocalityId) -> AtomicRegion {
        AtomicRegion {
            sem: rt.new_semaphore(loc, 1),
        }
    }

    /// Create from inside a PX-thread (homed at the calling locality).
    pub fn new_ctx(ctx: &mut Ctx<'_>) -> AtomicRegion {
        AtomicRegion {
            sem: ctx.new_semaphore(1),
        }
    }

    /// The underlying semaphore LCO.
    pub fn gid(&self) -> Gid {
        self.sem
    }

    /// Enter the region: `f` runs when the permit is granted and **must
    /// complete the section** — the permit is released automatically when
    /// `f` returns. Split-phase: the caller's thread terminates; `f` is
    /// the continuation.
    pub fn enter(&self, ctx: &mut Ctx<'_>, f: impl FnOnce(&mut Ctx<'_>) + Send + 'static) {
        let sem = self.sem;
        ctx.acquire(sem, move |ctx| {
            f(ctx);
            ctx.release(sem);
        });
    }

    /// Enter with an explicit hand-off: `f` receives a [`RegionGuard`] it
    /// must eventually release (for sections spanning further
    /// continuations).
    pub fn enter_manual(
        &self,
        ctx: &mut Ctx<'_>,
        f: impl FnOnce(&mut Ctx<'_>, RegionGuard) + Send + 'static,
    ) {
        let sem = self.sem;
        ctx.acquire(sem, move |ctx| f(ctx, RegionGuard { sem }));
    }
}

/// Proof of region ownership; release it to let the next waiter in.
#[derive(Debug)]
pub struct RegionGuard {
    sem: Gid,
}

impl RegionGuard {
    /// Release the region.
    pub fn release(self, ctx: &mut Ctx<'_>) {
        ctx.release(self.sem);
    }
}

/// A location-consistent cell of `T`, homed at one locality.
pub struct LcCell<T> {
    home: Gid,
    region: AtomicRegion,
    _t: PhantomData<fn() -> T>,
}

impl<T> Clone for LcCell<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for LcCell<T> {}

impl<T> std::fmt::Debug for LcCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LcCell({})", self.home)
    }
}

impl<T: Serialize + DeserializeOwned + Send + 'static> LcCell<T> {
    /// Create the cell at `loc` with an initial value.
    pub fn new(rt: &Runtime, loc: LocalityId, initial: &T) -> PxResult<LcCell<T>> {
        let bytes = px_wire::to_bytes(initial)?;
        Ok(LcCell {
            home: rt.new_data_at(loc, bytes),
            region: AtomicRegion::new(rt, loc),
            _t: PhantomData,
        })
    }

    /// The home data object.
    pub fn gid(&self) -> Gid {
        self.home
    }

    /// Atomic section over the cell: acquire → fetch home value → run `f`
    /// on a private copy → publish → release. Writes inside `f` are
    /// invisible elsewhere until the release (weak consistency); the
    /// region serializes racing sections.
    pub fn atomic_update(
        &self,
        ctx: &mut Ctx<'_>,
        f: impl FnOnce(&mut Ctx<'_>, &mut T) + Send + 'static,
    ) {
        let home = self.home;
        self.region.enter_manual(ctx, move |ctx, guard| {
            let fut = ctx.fetch_data(home); // acquire: pull current value
            ctx.when_future(fut, move |ctx, bytes: Vec<u8>| {
                let mut value: T = match px_wire::from_bytes(&bytes) {
                    Ok(v) => v,
                    Err(_) => {
                        guard.release(ctx);
                        return;
                    }
                };
                f(ctx, &mut value);
                let bytes = px_wire::to_bytes(&value).expect("LcCell value must encode");
                let done = ctx.store_data(home, &bytes).expect("Vec<u8> encodes");
                // release: publish, then free the region.
                ctx.when_future(done, move |ctx, ()| {
                    guard.release(ctx);
                });
            });
        });
    }

    /// Unsynchronized read: whatever the home currently holds. May be
    /// stale relative to in-flight atomic sections — the LC contract for
    /// reads outside acquire/release pairs.
    pub fn read_weak(&self, ctx: &mut Ctx<'_>) -> px_core::lco::FutureRef<Vec<u8>> {
        ctx.fetch_data(self.home)
    }

    /// Driver-side blocking read (test/verification use).
    pub fn read_blocking(&self, rt: &Runtime) -> PxResult<T> {
        let bytes = rt.read_data(self.home)?;
        Ok(px_wire::from_bytes(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_core::prelude::*;
    use std::time::Duration;

    fn rt(locs: usize) -> Runtime {
        RuntimeBuilder::new(Config::small(locs, 2)).build().unwrap()
    }

    #[test]
    fn region_serializes_critical_sections() {
        let rt = rt(2);
        let region = AtomicRegion::new(&rt, LocalityId(0));
        // A non-atomic counter mutated only inside the region: if the
        // region failed to serialize, increments would race via the
        // read-sleep-write pattern.
        let counter = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
        let gate = rt.new_and_gate(LocalityId(0), 16);
        let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
        for i in 0..16u16 {
            let c = counter.clone();
            let dest = LocalityId(i % 2);
            rt.spawn_at(dest, move |ctx| {
                region.enter(ctx, move |ctx| {
                    let read = *c.lock();
                    std::thread::yield_now();
                    *c.lock() = read + 1;
                    ctx.trigger_value(gate, px_core::action::Value::unit());
                });
            });
        }
        rt.wait_future(gate_fut).unwrap();
        assert_eq!(*counter.lock(), 16);
        rt.shutdown();
    }

    #[test]
    fn lc_cell_atomic_updates_all_land() {
        let rt = rt(3);
        let cell = LcCell::new(&rt, LocalityId(0), &0u64).unwrap();
        let gate = rt.new_and_gate(LocalityId(0), 30);
        let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
        for i in 0..30u16 {
            let dest = LocalityId(i % 3);
            rt.spawn_at(dest, move |ctx| {
                cell.atomic_update(ctx, move |ctx, v| {
                    *v += 1;
                    ctx.trigger_value(gate, px_core::action::Value::unit());
                });
            });
        }
        rt.wait_future(gate_fut).unwrap();
        // The gate fires when all sections have *run*; publishes follow
        // within the section's release. Poll briefly for the last store.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let v = cell.read_blocking(&rt).unwrap();
            if v == 30 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "updates lost: {v} of 30"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.shutdown();
    }

    #[test]
    fn manual_guard_spans_continuations() {
        let rt = rt(2);
        let region = AtomicRegion::new(&rt, LocalityId(0));
        let done = rt.new_future::<bool>(LocalityId(0));
        let done_gid = done.gid();
        rt.spawn_at(LocalityId(1), move |ctx| {
            region.enter_manual(ctx, move |ctx, guard| {
                // Hold the region across a spawned continuation.
                ctx.spawn(move |ctx| {
                    guard.release(ctx);
                    ctx.trigger(done_gid, &true).unwrap();
                });
            });
        });
        assert!(done.wait(&rt).unwrap());
        rt.shutdown();
    }

    #[test]
    fn weak_read_sees_initial_before_any_update() {
        let rt = rt(1);
        let cell = LcCell::new(&rt, LocalityId(0), &123u32).unwrap();
        assert_eq!(cell.read_blocking(&rt).unwrap(), 123);
        rt.shutdown();
    }
}
