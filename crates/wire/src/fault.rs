//! Wire encoding of fault payloads.
//!
//! When a parcel dies inside the runtime (hop budget exhausted, unknown
//! action, handler error, panicked action, undecodable payload), its
//! continuation is satisfied with a *fault value* instead of a result so
//! downstream waiters resolve with an error rather than hanging forever.
//! The fault itself must cross the wire like any payload — a continuation
//! can live on another locality — so its encoding is fixed here, next to
//! the parcel payload format.
//!
//! Layout (little-endian, matching the rest of the format):
//!
//! | Field | Encoding |
//! |---|---|
//! | `cause` | one byte (a [`WireFault::cause`] code) |
//! | `action` | `u64` — raw action id of the dying parcel (0 = none) |
//! | `dest` | `u64` — raw GID of the dying parcel's destination |
//! | `message` | LEB128 length + UTF-8 bytes |
//!
//! Whether a payload *is* a fault is not encoded here: the parcel header
//! carries a fault flag (fault-ness must survive re-encoding, and a user
//! payload that happens to look like a fault must not become one).

use crate::buf::{WireReader, WireWriter};
use crate::error::WireResult;

/// A fault payload as it crosses the wire: the typed view lives in
/// `px-core` (`Fault`); this struct is the schema both sides agree on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// Cause code. `px-core` maps these to its `FaultCause` enum; unknown
    /// codes decode (forward compatibility) and map to a generic cause.
    pub cause: u8,
    /// Raw [`u64`] action id of the parcel that died (0 when the fault
    /// did not originate from an action dispatch).
    pub action: u64,
    /// Raw [`u64`] GID of the dying parcel's destination object.
    pub dest: u64,
    /// Human-readable description (panic message, error display, …).
    pub message: String,
}

impl WireFault {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(1 + 8 + 8 + 2 + self.message.len());
        w.put_u8(self.cause);
        w.put_u64(self.action);
        w.put_u64(self.dest);
        w.put_len_bytes(self.message.as_bytes());
        w.into_bytes()
    }

    /// Decode from wire bytes. A non-UTF-8 message is replaced lossily
    /// rather than rejected: a fault that cannot be decoded would itself
    /// have to become a fault, and the loop has to stop somewhere.
    pub fn decode(bytes: &[u8]) -> WireResult<WireFault> {
        let mut r = WireReader::new(bytes);
        let cause = r.get_u8()?;
        let action = r.get_u64()?;
        let dest = r.get_u64()?;
        let message = String::from_utf8_lossy(r.get_len_bytes()?).into_owned();
        Ok(WireFault {
            cause,
            action,
            dest,
            message,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_roundtrip() {
        let f = WireFault {
            cause: 3,
            action: 0xdead_beef_cafe_f00d,
            dest: 42,
            message: "action panicked: index out of bounds".into(),
        };
        let back = WireFault::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn empty_message_roundtrip() {
        let f = WireFault {
            cause: 0,
            action: 0,
            dest: 0,
            message: String::new(),
        };
        assert_eq!(WireFault::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn truncated_fault_rejected() {
        let bytes = WireFault {
            cause: 1,
            action: 2,
            dest: 3,
            message: "x".into(),
        }
        .encode();
        assert!(WireFault::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(WireFault::decode(&[]).is_err());
    }

    #[test]
    fn invalid_utf8_message_is_lossy_not_fatal() {
        let mut w = WireWriter::new();
        w.put_u8(2);
        w.put_u64(1);
        w.put_u64(1);
        w.put_len_bytes(&[0xff, 0xfe]);
        let f = WireFault::decode(&w.into_bytes()).unwrap();
        assert_eq!(f.cause, 2);
        assert!(!f.message.is_empty());
    }
}
