//! # px-wire — compact binary wire format for ParalleX parcels
//!
//! Parcels in ParalleX carry serialized argument values between localities
//! (§2.2 of the paper: "Additional argument values can be carried by the
//! parcel to move prior state to the site of the invoked thread execution").
//! This crate provides the byte-level encoding used for those payloads:
//! a small, untagged, little-endian binary format with LEB128
//! variable-length integers for lengths and enum discriminants.
//!
//! The format is implemented as a pair of [`serde`] adapters so any
//! `Serialize`/`Deserialize` type can ride in a parcel:
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Body { pos: [f64; 3], mass: f64, id: u64 }
//!
//! let b = Body { pos: [1.0, 2.0, 3.0], mass: 5.5, id: 42 };
//! let bytes = px_wire::to_bytes(&b).unwrap();
//! let back: Body = px_wire::from_bytes(&bytes).unwrap();
//! assert_eq!(b, back);
//! ```
//!
//! ## Encoding rules
//!
//! | Type | Encoding |
//! |---|---|
//! | `bool` | one byte, `0` or `1` |
//! | `u8..u64`, `i8..i64` | fixed-width little-endian |
//! | `u128`/`i128` | fixed 16 bytes little-endian |
//! | `f32`/`f64` | IEEE-754 bits, little-endian |
//! | `char` | `u32` scalar value |
//! | `str`, `bytes` | LEB128 length + raw bytes |
//! | `Option` | `0` = None, `1` + value = Some |
//! | seq/map | LEB128 length + elements (length required) |
//! | tuple/struct | elements back to back, no framing |
//! | enum | LEB128 variant index + payload |
//!
//! The format is not self-describing: reader and writer must agree on the
//! schema, which is always true for parcels because the action registry
//! fixes the argument type on both sides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod de;
mod error;
mod fault;
mod frame;
mod histogram;
mod ser;
pub mod stream;

pub use buf::{WireReader, WireWriter};
pub use de::{from_bytes, Deserializer};
pub use error::{WireError, WireResult};
pub use fault::WireFault;
pub use frame::{
    frame_checksum, FrameBuf, FrameRecords, FrameView, FRAME_HEADER_LEN, FRAME_TRAILER_LEN,
    FRAME_VERSION, FRAME_VERSION_CHECKSUM, RECORD_HEADER_LEN,
};
pub use histogram::WireHistogram;
pub use ser::{to_bytes, to_writer, Serializer};

/// Bit assignments of the parcel header *flags* byte.
///
/// The flags byte is the single extension point of the parcel header:
/// every optional header field is gated on a bit here so that parcels not
/// using a feature pay zero bytes for it and their encoding stays
/// bit-identical as features are added. Fixed in `px-wire` (rather than
/// in the parcel layer) because the frame format and any future peer
/// implementation must agree on it.
pub mod parcel_flags {
    /// Deliver into the destination's percolation staging buffer.
    pub const STAGED: u8 = 1 << 0;
    /// The payload is an encoded [`crate::WireFault`], not action args.
    pub const FAULT: u8 = 1 << 1;
    /// An owning-process id (`u64`, little-endian) follows the flags
    /// byte: the parcel is accounted to that parallel process for
    /// hierarchical quiescence and is killed at dispatch if the process
    /// has been cancelled.
    pub const HAS_PID: u8 = 1 << 2;
    /// A causal trace id (`u64`, little-endian) follows the optional
    /// owning-process id: every event the parcel causes (dispatch,
    /// LCO trigger, fault, follow-on parcels) is recorded under this id
    /// so a request can be replayed end to end across localities and
    /// ranks. Untraced parcels carry zero bytes for it.
    pub const HAS_TRACE: u8 = 1 << 3;
    /// Mask of bits a decoder of this version understands.
    pub const KNOWN: u8 = STAGED | FAULT | HAS_PID | HAS_TRACE;
}

/// Serialize a value and report the encoded size without keeping the bytes.
///
/// Used by instrumentation that needs payload sizes (e.g. the work-to-data
/// crossover experiment E6) without double-buffering.
pub fn encoded_size<T: serde::Serialize>(value: &T) -> WireResult<usize> {
    Ok(to_bytes(value)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T>(v: &T) -> T
    where
        T: Serialize + for<'a> Deserialize<'a> + PartialEq + std::fmt::Debug,
    {
        let bytes = to_bytes(v).expect("serialize");
        let back: T = from_bytes(&bytes).expect("deserialize");
        assert_eq!(&back, v);
        back
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&-1i64);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&u128::MAX);
        roundtrip(&1.25e300f64);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&'ψ');
        roundtrip(&"hello parallex".to_string());
    }

    #[test]
    fn nan_roundtrips_as_nan() {
        let bytes = to_bytes(&f64::NAN).unwrap();
        let back: f64 = from_bytes(&bytes).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1u32, 2, 3, 4]);
        roundtrip(&Vec::<u8>::new());
        roundtrip(&Some(7u16));
        roundtrip(&Option::<u16>::None);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        roundtrip(&m);
        roundtrip(&(1u8, "two".to_string(), 3.0f32));
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Msg {
        Ping,
        Move { dx: f64, dy: f64 },
        Batch(Vec<u32>),
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(&Msg::Ping);
        roundtrip(&Msg::Move { dx: 1.5, dy: -2.5 });
        roundtrip(&Msg::Batch(vec![9, 8, 7]));
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        inner: Vec<Msg>,
        flag: Option<bool>,
    }

    #[test]
    fn nested_struct_roundtrips() {
        roundtrip(&Nested {
            name: "locality-3".into(),
            inner: vec![Msg::Ping, Msg::Batch(vec![1])],
            flag: Some(false),
        });
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u32).unwrap();
        bytes.push(0xff);
        let r: WireResult<u32> = from_bytes(&bytes);
        assert!(r.is_err(), "trailing bytes must be an error");
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&"a longer string".to_string()).unwrap();
        let r: WireResult<String> = from_bytes(&bytes[..bytes.len() - 2]);
        assert!(r.is_err());
    }

    #[test]
    fn encoded_size_matches() {
        let v = vec![1u64, 2, 3];
        assert_eq!(encoded_size(&v).unwrap(), to_bytes(&v).unwrap().len());
    }

    #[test]
    fn compactness_u8_vec() {
        // A Vec<u8> of length 100 should cost ~1 length byte + 100 payload.
        let v = vec![0u8; 100];
        assert_eq!(to_bytes(&v).unwrap().len(), 101);
    }
}
