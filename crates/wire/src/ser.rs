//! serde `Serializer` for the wire format.

use crate::buf::WireWriter;
use crate::error::{WireError, WireResult};
use serde::ser::{Serialize, Serializer as SerdeSerializer};

/// Serialize `value` into a fresh byte vector.
pub fn to_bytes<T: Serialize>(value: &T) -> WireResult<Vec<u8>> {
    let mut w = WireWriter::new();
    to_writer(&mut w, value)?;
    Ok(w.into_bytes())
}

/// Serialize `value` into an existing [`WireWriter`] (buffer reuse).
pub fn to_writer<T: Serialize>(writer: &mut WireWriter, value: &T) -> WireResult<()> {
    let mut ser = Serializer { out: writer };
    value.serialize(&mut ser)
}

/// serde serializer writing the px-wire encoding.
pub struct Serializer<'w> {
    out: &'w mut WireWriter,
}

impl<'w> Serializer<'w> {
    /// Wrap a writer.
    pub fn new(out: &'w mut WireWriter) -> Self {
        Serializer { out }
    }
}

impl SerdeSerializer for Serializer<'_> {
    type Error = WireError;

    #[inline]
    fn put_bool(&mut self, v: bool) -> WireResult<()> {
        self.out.put_u8(v as u8);
        Ok(())
    }

    #[inline]
    fn put_u8(&mut self, v: u8) -> WireResult<()> {
        self.out.put_u8(v);
        Ok(())
    }

    #[inline]
    fn put_u16(&mut self, v: u16) -> WireResult<()> {
        self.out.put_u16(v);
        Ok(())
    }

    #[inline]
    fn put_u32(&mut self, v: u32) -> WireResult<()> {
        self.out.put_u32(v);
        Ok(())
    }

    #[inline]
    fn put_u64(&mut self, v: u64) -> WireResult<()> {
        self.out.put_u64(v);
        Ok(())
    }

    #[inline]
    fn put_u128(&mut self, v: u128) -> WireResult<()> {
        self.out.put_u128(v);
        Ok(())
    }

    #[inline]
    fn put_i8(&mut self, v: i8) -> WireResult<()> {
        self.out.put_i8(v);
        Ok(())
    }

    #[inline]
    fn put_i16(&mut self, v: i16) -> WireResult<()> {
        self.out.put_i16(v);
        Ok(())
    }

    #[inline]
    fn put_i32(&mut self, v: i32) -> WireResult<()> {
        self.out.put_i32(v);
        Ok(())
    }

    #[inline]
    fn put_i64(&mut self, v: i64) -> WireResult<()> {
        self.out.put_i64(v);
        Ok(())
    }

    #[inline]
    fn put_i128(&mut self, v: i128) -> WireResult<()> {
        self.out.put_i128(v);
        Ok(())
    }

    #[inline]
    fn put_f32(&mut self, v: f32) -> WireResult<()> {
        self.out.put_f32(v);
        Ok(())
    }

    #[inline]
    fn put_f64(&mut self, v: f64) -> WireResult<()> {
        self.out.put_f64(v);
        Ok(())
    }

    #[inline]
    fn put_char(&mut self, v: char) -> WireResult<()> {
        self.out.put_u32(v as u32);
        Ok(())
    }

    #[inline]
    fn put_str(&mut self, v: &str) -> WireResult<()> {
        self.out.put_len_bytes(v.as_bytes());
        Ok(())
    }

    #[inline]
    fn put_seq_len(&mut self, len: usize) -> WireResult<()> {
        self.out.put_varint(len as u64);
        Ok(())
    }

    #[inline]
    fn put_opt_tag(&mut self, is_some: bool) -> WireResult<()> {
        self.out.put_u8(is_some as u8);
        Ok(())
    }

    #[inline]
    fn put_variant(&mut self, index: u32) -> WireResult<()> {
        self.out.put_varint(u64::from(index));
        Ok(())
    }
}
