//! serde `Serializer` for the wire format.

use crate::buf::WireWriter;
use crate::error::{WireError, WireResult};
use serde::ser::{self, Serialize};

/// Serialize `value` into a fresh byte vector.
pub fn to_bytes<T: Serialize>(value: &T) -> WireResult<Vec<u8>> {
    let mut w = WireWriter::new();
    to_writer(&mut w, value)?;
    Ok(w.into_bytes())
}

/// Serialize `value` into an existing [`WireWriter`] (buffer reuse).
pub fn to_writer<T: Serialize>(writer: &mut WireWriter, value: &T) -> WireResult<()> {
    let mut ser = Serializer { out: writer };
    value.serialize(&mut ser)
}

/// serde serializer writing the px-wire encoding.
pub struct Serializer<'w> {
    out: &'w mut WireWriter,
}

impl<'a, 'w> ser::Serializer for &'a mut Serializer<'w> {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Compound<'a, 'w>;
    type SerializeTuple = Compound<'a, 'w>;
    type SerializeTupleStruct = Compound<'a, 'w>;
    type SerializeTupleVariant = Compound<'a, 'w>;
    type SerializeMap = Compound<'a, 'w>;
    type SerializeStruct = Compound<'a, 'w>;
    type SerializeStructVariant = Compound<'a, 'w>;

    #[inline]
    fn serialize_bool(self, v: bool) -> WireResult<()> {
        self.out.put_u8(v as u8);
        Ok(())
    }

    #[inline]
    fn serialize_i8(self, v: i8) -> WireResult<()> {
        self.out.put_i8(v);
        Ok(())
    }

    #[inline]
    fn serialize_i16(self, v: i16) -> WireResult<()> {
        self.out.put_i16(v);
        Ok(())
    }

    #[inline]
    fn serialize_i32(self, v: i32) -> WireResult<()> {
        self.out.put_i32(v);
        Ok(())
    }

    #[inline]
    fn serialize_i64(self, v: i64) -> WireResult<()> {
        self.out.put_i64(v);
        Ok(())
    }

    #[inline]
    fn serialize_i128(self, v: i128) -> WireResult<()> {
        self.out.put_i128(v);
        Ok(())
    }

    #[inline]
    fn serialize_u8(self, v: u8) -> WireResult<()> {
        self.out.put_u8(v);
        Ok(())
    }

    #[inline]
    fn serialize_u16(self, v: u16) -> WireResult<()> {
        self.out.put_u16(v);
        Ok(())
    }

    #[inline]
    fn serialize_u32(self, v: u32) -> WireResult<()> {
        self.out.put_u32(v);
        Ok(())
    }

    #[inline]
    fn serialize_u64(self, v: u64) -> WireResult<()> {
        self.out.put_u64(v);
        Ok(())
    }

    #[inline]
    fn serialize_u128(self, v: u128) -> WireResult<()> {
        self.out.put_u128(v);
        Ok(())
    }

    #[inline]
    fn serialize_f32(self, v: f32) -> WireResult<()> {
        self.out.put_f32(v);
        Ok(())
    }

    #[inline]
    fn serialize_f64(self, v: f64) -> WireResult<()> {
        self.out.put_f64(v);
        Ok(())
    }

    #[inline]
    fn serialize_char(self, v: char) -> WireResult<()> {
        self.out.put_u32(v as u32);
        Ok(())
    }

    #[inline]
    fn serialize_str(self, v: &str) -> WireResult<()> {
        self.out.put_len_bytes(v.as_bytes());
        Ok(())
    }

    #[inline]
    fn serialize_bytes(self, v: &[u8]) -> WireResult<()> {
        self.out.put_len_bytes(v);
        Ok(())
    }

    #[inline]
    fn serialize_none(self) -> WireResult<()> {
        self.out.put_u8(0);
        Ok(())
    }

    #[inline]
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> WireResult<()> {
        self.out.put_u8(1);
        value.serialize(self)
    }

    #[inline]
    fn serialize_unit(self) -> WireResult<()> {
        Ok(())
    }

    #[inline]
    fn serialize_unit_struct(self, _name: &'static str) -> WireResult<()> {
        Ok(())
    }

    #[inline]
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> WireResult<()> {
        self.out.put_varint(u64::from(variant_index));
        Ok(())
    }

    #[inline]
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> WireResult<()> {
        value.serialize(self)
    }

    #[inline]
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> WireResult<()> {
        self.out.put_varint(u64::from(variant_index));
        value.serialize(self)
    }

    #[inline]
    fn serialize_seq(self, len: Option<usize>) -> WireResult<Self::SerializeSeq> {
        let len = len.ok_or(WireError::UnknownLength)?;
        self.out.put_varint(len as u64);
        Ok(Compound { ser: self })
    }

    #[inline]
    fn serialize_tuple(self, _len: usize) -> WireResult<Self::SerializeTuple> {
        Ok(Compound { ser: self })
    }

    #[inline]
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> WireResult<Self::SerializeTupleStruct> {
        Ok(Compound { ser: self })
    }

    #[inline]
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> WireResult<Self::SerializeTupleVariant> {
        self.out.put_varint(u64::from(variant_index));
        Ok(Compound { ser: self })
    }

    #[inline]
    fn serialize_map(self, len: Option<usize>) -> WireResult<Self::SerializeMap> {
        let len = len.ok_or(WireError::UnknownLength)?;
        self.out.put_varint(len as u64);
        Ok(Compound { ser: self })
    }

    #[inline]
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> WireResult<Self::SerializeStruct> {
        Ok(Compound { ser: self })
    }

    #[inline]
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> WireResult<Self::SerializeStructVariant> {
        self.out.put_varint(u64::from(variant_index));
        Ok(Compound { ser: self })
    }

    #[inline]
    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Compound serializer state: elements are written back to back, so all
/// compound kinds share one implementation.
pub struct Compound<'a, 'w> {
    ser: &'a mut Serializer<'w>,
}

impl ser::SerializeSeq for Compound<'_, '_> {
    type Ok = ();
    type Error = WireError;

    #[inline]
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        value.serialize(&mut *self.ser)
    }

    #[inline]
    fn end(self) -> WireResult<()> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_, '_> {
    type Ok = ();
    type Error = WireError;

    #[inline]
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        value.serialize(&mut *self.ser)
    }

    #[inline]
    fn end(self) -> WireResult<()> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = WireError;

    #[inline]
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        value.serialize(&mut *self.ser)
    }

    #[inline]
    fn end(self) -> WireResult<()> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = WireError;

    #[inline]
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        value.serialize(&mut *self.ser)
    }

    #[inline]
    fn end(self) -> WireResult<()> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_, '_> {
    type Ok = ();
    type Error = WireError;

    #[inline]
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> WireResult<()> {
        key.serialize(&mut *self.ser)
    }

    #[inline]
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> WireResult<()> {
        value.serialize(&mut *self.ser)
    }

    #[inline]
    fn end(self) -> WireResult<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_, '_> {
    type Ok = ();
    type Error = WireError;

    #[inline]
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> WireResult<()> {
        value.serialize(&mut *self.ser)
    }

    #[inline]
    fn end(self) -> WireResult<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_, '_> {
    type Ok = ();
    type Error = WireError;

    #[inline]
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> WireResult<()> {
        value.serialize(&mut *self.ser)
    }

    #[inline]
    fn end(self) -> WireResult<()> {
        Ok(())
    }
}
