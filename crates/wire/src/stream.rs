//! Byte-stream message framing: what ParalleX TCP peers speak.
//!
//! A socket delivers a *byte stream*; the runtime's wire units (encoded
//! parcels and multi-parcel frames) must be re-framed on top of it. Each
//! stream message is
//!
//! ```text
//! +-----------+------------+---------+
//! | kind: u8  |  len: u32  |  body   |
//! |           |    (LE)    | (len B) |
//! +-----------+------------+---------+
//! ```
//!
//! where `kind` is one of [`msg_kind`] and `body` is the encoded parcel
//! or frame exactly as the in-process transport would have carried it —
//! the stream layer adds framing, never re-encodes.
//!
//! [`StreamAssembler`] is the receive half: feed it the arbitrary chunks
//! `read(2)` returns and it yields complete `(kind, body)` messages,
//! regardless of how the stream was split (a message may arrive across
//! many reads, or many messages in one read). A property test pins the
//! invariant: any chunking of a message sequence reassembles to the same
//! messages as feeding the bytes whole.
//!
//! ## Connection handshake
//!
//! The first bytes on every connection are a fixed-size hello:
//! `MAGIC (u32 LE) ++ STREAM_VERSION (u8) ++ locality id (u16 LE)`,
//! built/parsed by [`encode_handshake`]/[`decode_handshake`]. The magic
//! rejects strangers (port scanners, misconfigured peers) before any
//! runtime state is touched; the locality id tells the acceptor which
//! peer this inbound byte stream belongs to.

use crate::error::{WireError, WireResult};

/// Stream protocol magic: `"PXS1"` little-endian.
pub const STREAM_MAGIC: u32 = 0x3153_5850;

/// Stream protocol version (bumped on any header/handshake change).
pub const STREAM_VERSION: u8 = 1;

/// Bytes of the per-message header (`kind` + `len`).
pub const MSG_HEADER_LEN: usize = 1 + 4;

/// Bytes of the connection handshake (`magic` + `version` + `locality`).
pub const HANDSHAKE_LEN: usize = 4 + 1 + 2;

/// Upper bound on a single stream message body. Far above any real frame
/// (ports cap frames at `max_batch_bytes`); its job is to turn a
/// desynchronized or hostile length prefix into a loud error instead of
/// an attempted multi-gigabyte allocation.
pub const MAX_MSG_LEN: usize = 256 * 1024 * 1024;

/// Message kinds carried over a peer stream.
pub mod msg_kind {
    /// One encoded parcel, for the destination's general run queue.
    pub const PARCEL: u8 = 0;
    /// One encoded parcel, for the percolation staging buffer.
    pub const PARCEL_STAGED: u8 = 1;
    /// A multi-parcel frame ([`crate::FrameBuf`]), general run queue.
    pub const FRAME: u8 = 2;
    /// A multi-parcel frame, percolation staging buffer.
    pub const FRAME_STAGED: u8 = 3;
    /// Control-plane parcel (balancer gossip): delivered to the
    /// destination's priority control queue, never coalesced.
    pub const CONTROL: u8 = 4;
    /// Highest kind a decoder of this version understands.
    pub const MAX: u8 = CONTROL;
}

/// Encode a message header for a body of `len` bytes.
pub fn encode_msg_header(kind: u8, len: u32) -> [u8; MSG_HEADER_LEN] {
    let mut h = [0u8; MSG_HEADER_LEN];
    h[0] = kind;
    h[1..5].copy_from_slice(&len.to_le_bytes());
    h
}

/// Encode the connection hello for `locality`.
pub fn encode_handshake(locality: u16) -> [u8; HANDSHAKE_LEN] {
    let mut h = [0u8; HANDSHAKE_LEN];
    h[0..4].copy_from_slice(&STREAM_MAGIC.to_le_bytes());
    h[4] = STREAM_VERSION;
    h[5..7].copy_from_slice(&locality.to_le_bytes());
    h
}

/// Validate a connection hello; returns the peer's locality id.
pub fn decode_handshake(bytes: &[u8; HANDSHAKE_LEN]) -> WireResult<u16> {
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != STREAM_MAGIC {
        return Err(WireError::Message(format!(
            "bad stream magic {magic:#010x} (not a ParalleX peer?)"
        )));
    }
    if bytes[4] != STREAM_VERSION {
        return Err(WireError::Message(format!(
            "unsupported stream version {}",
            bytes[4]
        )));
    }
    Ok(u16::from_le_bytes(bytes[5..7].try_into().unwrap()))
}

/// Incremental reassembler for the message stream.
///
/// Feed raw chunks with [`StreamAssembler::feed`]; pull complete
/// messages with [`StreamAssembler::next_msg`]. An error (unknown kind
/// or an impossible length) means the stream is desynchronized and the
/// connection must be dropped — there is no way to resynchronize a
/// length-prefixed stream after a bad prefix.
#[derive(Debug, Default)]
pub struct StreamAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
}

impl StreamAssembler {
    /// New empty assembler.
    pub fn new() -> StreamAssembler {
        StreamAssembler::default()
    }

    /// Append a chunk read from the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Compact before growing: once every buffered message has been
        // consumed the allocation is reused from the start, so steady
        // state never grows beyond (largest message + one chunk).
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 0 && self.pos >= self.buf.len() / 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet returned as messages.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Next complete message, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes"; `Err` means the stream is
    /// corrupt/desynchronized and must be dropped.
    pub fn next_msg(&mut self) -> WireResult<Option<(u8, Vec<u8>)>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < MSG_HEADER_LEN {
            return Ok(None);
        }
        let kind = avail[0];
        if kind > msg_kind::MAX {
            return Err(WireError::Message(format!(
                "unknown stream message kind {kind}"
            )));
        }
        let len = u32::from_le_bytes(avail[1..5].try_into().unwrap()) as usize;
        if len > MAX_MSG_LEN {
            return Err(WireError::Message(format!(
                "stream message of {len} bytes exceeds the {MAX_MSG_LEN}-byte cap"
            )));
        }
        if avail.len() < MSG_HEADER_LEN + len {
            return Ok(None);
        }
        let body = avail[MSG_HEADER_LEN..MSG_HEADER_LEN + len].to_vec();
        self.pos += MSG_HEADER_LEN + len;
        Ok(Some((kind, body)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_msg(kind: u8, body: &[u8]) -> Vec<u8> {
        let mut out = encode_msg_header(kind, body.len() as u32).to_vec();
        out.extend_from_slice(body);
        out
    }

    #[test]
    fn whole_feed_yields_all_messages() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_msg(msg_kind::PARCEL, b"abc"));
        stream.extend_from_slice(&encode_msg(msg_kind::FRAME, b""));
        stream.extend_from_slice(&encode_msg(msg_kind::CONTROL, b"gossip"));
        let mut a = StreamAssembler::new();
        a.feed(&stream);
        assert_eq!(
            a.next_msg().unwrap(),
            Some((msg_kind::PARCEL, b"abc".to_vec()))
        );
        assert_eq!(a.next_msg().unwrap(), Some((msg_kind::FRAME, Vec::new())));
        assert_eq!(
            a.next_msg().unwrap(),
            Some((msg_kind::CONTROL, b"gossip".to_vec()))
        );
        assert_eq!(a.next_msg().unwrap(), None);
        assert_eq!(a.pending_bytes(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembles() {
        let msg = encode_msg(msg_kind::PARCEL_STAGED, &[7u8; 100]);
        let mut a = StreamAssembler::new();
        for &b in &msg[..msg.len() - 1] {
            a.feed(&[b]);
            assert_eq!(a.next_msg().unwrap(), None, "incomplete must not yield");
        }
        a.feed(&msg[msg.len() - 1..]);
        assert_eq!(
            a.next_msg().unwrap(),
            Some((msg_kind::PARCEL_STAGED, vec![7u8; 100]))
        );
    }

    #[test]
    fn unknown_kind_is_fatal() {
        let mut a = StreamAssembler::new();
        a.feed(&encode_msg(9, b"x"));
        assert!(a.next_msg().is_err());
    }

    #[test]
    fn oversized_length_is_fatal() {
        let mut a = StreamAssembler::new();
        a.feed(&encode_msg_header(msg_kind::FRAME, u32::MAX));
        assert!(a.next_msg().is_err());
    }

    #[test]
    fn handshake_roundtrip_and_rejection() {
        let h = encode_handshake(42);
        assert_eq!(decode_handshake(&h).unwrap(), 42);
        let mut bad = h;
        bad[0] ^= 0xff;
        assert!(decode_handshake(&bad).is_err());
        let mut wrong_version = h;
        wrong_version[4] = 99;
        assert!(decode_handshake(&wrong_version).is_err());
    }
}
