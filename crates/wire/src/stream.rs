//! Byte-stream message framing: what ParalleX TCP peers speak.
//!
//! A socket delivers a *byte stream*; the runtime's wire units (encoded
//! parcels and multi-parcel frames) must be re-framed on top of it. Each
//! stream message is
//!
//! ```text
//! +-----------+------------+---------+
//! | kind: u8  |  len: u32  |  body   |
//! |           |    (LE)    | (len B) |
//! +-----------+------------+---------+
//! ```
//!
//! where `kind` is one of [`msg_kind`] and `body` is the encoded parcel
//! or frame exactly as the in-process transport would have carried it —
//! the stream layer adds framing, never re-encodes.
//!
//! [`StreamAssembler`] is the receive half: feed it the arbitrary chunks
//! `read(2)` returns and it yields complete `(kind, body)` messages,
//! regardless of how the stream was split (a message may arrive across
//! many reads, or many messages in one read). A property test pins the
//! invariant: any chunking of a message sequence reassembles to the same
//! messages as feeding the bytes whole.
//!
//! ## Connection handshake
//!
//! The first bytes on every connection are a fixed-size hello:
//! `MAGIC (u32 LE) ++ STREAM_VERSION (u8) ++ locality id (u16 LE)`,
//! built/parsed by [`encode_handshake`]/[`decode_handshake`]. The magic
//! rejects strangers (port scanners, misconfigured peers) before any
//! runtime state is touched; the locality id tells the acceptor which
//! peer this inbound byte stream belongs to.

use crate::error::{WireError, WireResult};

/// Stream protocol magic: `"PXS1"` little-endian.
pub const STREAM_MAGIC: u32 = 0x3153_5850;

/// Stream protocol version (bumped on any header/handshake change).
pub const STREAM_VERSION: u8 = 1;

/// Bytes of the per-message header (`kind` + `len`).
pub const MSG_HEADER_LEN: usize = 1 + 4;

/// Bytes of the connection handshake (`magic` + `version` + `locality`).
pub const HANDSHAKE_LEN: usize = 4 + 1 + 2;

/// Upper bound on a single stream message body. Far above any real frame
/// (ports cap frames at `max_batch_bytes`); its job is to turn a
/// desynchronized or hostile length prefix into a loud error instead of
/// an attempted multi-gigabyte allocation.
pub const MAX_MSG_LEN: usize = 256 * 1024 * 1024;

/// Message kinds carried over a peer stream.
pub mod msg_kind {
    /// One encoded parcel, for the destination's general run queue.
    pub const PARCEL: u8 = 0;
    /// One encoded parcel, for the percolation staging buffer.
    pub const PARCEL_STAGED: u8 = 1;
    /// A multi-parcel frame ([`crate::FrameBuf`]), general run queue.
    pub const FRAME: u8 = 2;
    /// A multi-parcel frame, percolation staging buffer.
    pub const FRAME_STAGED: u8 = 3;
    /// Control-plane parcel (balancer gossip): delivered to the
    /// destination's priority control queue, never coalesced.
    pub const CONTROL: u8 = 4;
    /// Highest kind a decoder of this version understands.
    pub const MAX: u8 = CONTROL;
}

/// Encode a message header for a body of `len` bytes.
pub fn encode_msg_header(kind: u8, len: u32) -> [u8; MSG_HEADER_LEN] {
    let mut h = [0u8; MSG_HEADER_LEN];
    h[0] = kind;
    h[1..5].copy_from_slice(&len.to_le_bytes());
    h
}

/// Encode the connection hello for `locality`.
pub fn encode_handshake(locality: u16) -> [u8; HANDSHAKE_LEN] {
    let mut h = [0u8; HANDSHAKE_LEN];
    h[0..4].copy_from_slice(&STREAM_MAGIC.to_le_bytes());
    h[4] = STREAM_VERSION;
    h[5..7].copy_from_slice(&locality.to_le_bytes());
    h
}

/// Validate a connection hello; returns the peer's locality id.
pub fn decode_handshake(bytes: &[u8; HANDSHAKE_LEN]) -> WireResult<u16> {
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != STREAM_MAGIC {
        return Err(WireError::Message(format!(
            "bad stream magic {magic:#010x} (not a ParalleX peer?)"
        )));
    }
    if bytes[4] != STREAM_VERSION {
        return Err(WireError::Message(format!(
            "unsupported stream version {}",
            bytes[4]
        )));
    }
    Ok(u16::from_le_bytes(bytes[5..7].try_into().unwrap()))
}

/// Incremental reassembler for the message stream.
///
/// Feed raw chunks with [`StreamAssembler::feed`]; pull complete
/// messages with [`StreamAssembler::next_msg`]. An error (unknown kind
/// or an impossible length) means the stream is desynchronized and the
/// connection must be dropped — there is no way to resynchronize a
/// length-prefixed stream after a bad prefix.
#[derive(Debug, Default)]
pub struct StreamAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
}

impl StreamAssembler {
    /// New empty assembler.
    pub fn new() -> StreamAssembler {
        StreamAssembler::default()
    }

    /// Append a chunk read from the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Compact before growing: once every buffered message has been
        // consumed the allocation is reused from the start, so steady
        // state never grows beyond (largest message + one chunk).
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 0 && self.pos >= self.buf.len() / 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet returned as messages.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Next complete message, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes"; `Err` means the stream is
    /// corrupt/desynchronized and must be dropped.
    pub fn next_msg(&mut self) -> WireResult<Option<(u8, Vec<u8>)>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < MSG_HEADER_LEN {
            return Ok(None);
        }
        let kind = avail[0];
        if kind > msg_kind::MAX {
            return Err(WireError::Message(format!(
                "unknown stream message kind {kind}"
            )));
        }
        let len = u32::from_le_bytes(avail[1..5].try_into().unwrap()) as usize;
        if len > MAX_MSG_LEN {
            return Err(WireError::Message(format!(
                "stream message of {len} bytes exceeds the {MAX_MSG_LEN}-byte cap"
            )));
        }
        if avail.len() < MSG_HEADER_LEN + len {
            return Ok(None);
        }
        let body = avail[MSG_HEADER_LEN..MSG_HEADER_LEN + len].to_vec();
        self.pos += MSG_HEADER_LEN + len;
        Ok(Some((kind, body)))
    }
}

/// The send half of the message stream: queued messages exposed as
/// scatter-gather slices with explicit partial-write carry-over.
///
/// A nonblocking socket consumes however many bytes the kernel has room
/// for — possibly mid-header, possibly mid-body. `WriteBatch` owns the
/// queued `(kind, body)` messages, hands out the *unwritten* tail as
/// [`std::io::IoSlice`]s for `write_vectored`, and [`WriteBatch::advance`]s
/// by whatever the write returned, popping fully-written messages and
/// remembering the byte offset into the front one. A property test pins
/// the mirror-image invariant of [`StreamAssembler`]'s: any split of the
/// writes reassembles to the same messages.
///
/// On a connection loss the unwritten tail is still here:
/// [`WriteBatch::rewind`] restarts the front message from byte 0 for a
/// reconnect re-send (at-least-once), and [`WriteBatch::drain_msgs`]
/// surrenders the messages for loud per-parcel kills when the peer is
/// declared dead.
#[derive(Debug, Default)]
pub struct WriteBatch {
    msgs: std::collections::VecDeque<([u8; MSG_HEADER_LEN], Vec<u8>)>,
    /// Bytes of the front message (header ++ body) already written.
    offset: usize,
    /// Unwritten bytes across all queued messages.
    remaining: usize,
}

impl WriteBatch {
    /// New empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// No unwritten bytes queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Queued messages not yet fully written.
    pub fn msg_count(&self) -> usize {
        self.msgs.len()
    }

    /// Unwritten bytes (headers + bodies).
    pub fn remaining_bytes(&self) -> usize {
        self.remaining
    }

    /// Queue one message.
    pub fn push(&mut self, kind: u8, body: Vec<u8>) {
        let header = encode_msg_header(kind, body.len() as u32);
        self.remaining += MSG_HEADER_LEN + body.len();
        self.msgs.push_back((header, body));
    }

    /// Collect the unwritten tail as at most `max_slices` I/O slices
    /// (callers cap below the platform's `IOV_MAX`; the rest of the tail
    /// just waits for the next call). Returns the byte total of the
    /// collected slices.
    pub fn unwritten_slices<'a>(
        &'a self,
        out: &mut Vec<std::io::IoSlice<'a>>,
        max_slices: usize,
    ) -> usize {
        out.clear();
        let mut total = 0;
        for (i, (header, body)) in self.msgs.iter().enumerate() {
            if out.len() >= max_slices {
                break;
            }
            let offset = if i == 0 { self.offset } else { 0 };
            if offset < MSG_HEADER_LEN {
                out.push(std::io::IoSlice::new(&header[offset..]));
                total += MSG_HEADER_LEN - offset;
                if !body.is_empty() && out.len() < max_slices {
                    out.push(std::io::IoSlice::new(body));
                    total += body.len();
                }
            } else if offset - MSG_HEADER_LEN < body.len() {
                out.push(std::io::IoSlice::new(&body[offset - MSG_HEADER_LEN..]));
                total += body.len() - (offset - MSG_HEADER_LEN);
            }
        }
        total
    }

    /// Consume `n` written bytes: fully-written messages pop, a partially
    /// written front message records its offset for the next slices.
    pub fn advance(&mut self, n: usize) {
        self.advance_with(n, |_| {});
    }

    /// [`WriteBatch::advance`], reporting the `kind` of every message
    /// that became fully written — the hook where a transport counts
    /// messages as *sent* (bytes handed to the kernel) rather than as
    /// queued.
    pub fn advance_with(&mut self, mut n: usize, mut on_sent: impl FnMut(u8)) {
        debug_assert!(n <= self.remaining, "advanced past the queued bytes");
        self.remaining -= n;
        while n > 0 {
            let (kind, front_len) = {
                let (header, body) = self.msgs.front().expect("advance with messages queued");
                (header[0], MSG_HEADER_LEN + body.len())
            };
            let left = front_len - self.offset;
            if n >= left {
                self.msgs.pop_front();
                self.offset = 0;
                n -= left;
                on_sent(kind);
            } else {
                self.offset += n;
                n = 0;
            }
        }
    }

    /// Restart the front message from byte 0 (reconnect re-send). Bytes
    /// already written to the dead connection are written again on the
    /// new one: at-least-once across a reconnect, as documented by the
    /// TCP backend.
    pub fn rewind(&mut self) {
        self.remaining += self.offset;
        self.offset = 0;
    }

    /// Surrender every queued message (peer declared dead; the transport
    /// kills each one loudly). The batch is empty afterwards.
    pub fn drain_msgs(&mut self) -> Vec<(u8, Vec<u8>)> {
        self.offset = 0;
        self.remaining = 0;
        self.msgs.drain(..).map(|(h, body)| (h[0], body)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_msg(kind: u8, body: &[u8]) -> Vec<u8> {
        let mut out = encode_msg_header(kind, body.len() as u32).to_vec();
        out.extend_from_slice(body);
        out
    }

    #[test]
    fn whole_feed_yields_all_messages() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_msg(msg_kind::PARCEL, b"abc"));
        stream.extend_from_slice(&encode_msg(msg_kind::FRAME, b""));
        stream.extend_from_slice(&encode_msg(msg_kind::CONTROL, b"gossip"));
        let mut a = StreamAssembler::new();
        a.feed(&stream);
        assert_eq!(
            a.next_msg().unwrap(),
            Some((msg_kind::PARCEL, b"abc".to_vec()))
        );
        assert_eq!(a.next_msg().unwrap(), Some((msg_kind::FRAME, Vec::new())));
        assert_eq!(
            a.next_msg().unwrap(),
            Some((msg_kind::CONTROL, b"gossip".to_vec()))
        );
        assert_eq!(a.next_msg().unwrap(), None);
        assert_eq!(a.pending_bytes(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembles() {
        let msg = encode_msg(msg_kind::PARCEL_STAGED, &[7u8; 100]);
        let mut a = StreamAssembler::new();
        for &b in &msg[..msg.len() - 1] {
            a.feed(&[b]);
            assert_eq!(a.next_msg().unwrap(), None, "incomplete must not yield");
        }
        a.feed(&msg[msg.len() - 1..]);
        assert_eq!(
            a.next_msg().unwrap(),
            Some((msg_kind::PARCEL_STAGED, vec![7u8; 100]))
        );
    }

    #[test]
    fn unknown_kind_is_fatal() {
        let mut a = StreamAssembler::new();
        a.feed(&encode_msg(9, b"x"));
        assert!(a.next_msg().is_err());
    }

    #[test]
    fn oversized_length_is_fatal() {
        let mut a = StreamAssembler::new();
        a.feed(&encode_msg_header(msg_kind::FRAME, u32::MAX));
        assert!(a.next_msg().is_err());
    }

    #[test]
    fn write_batch_byte_at_a_time_matches_whole_write() {
        let mut batch = WriteBatch::new();
        batch.push(msg_kind::PARCEL, b"abc".to_vec());
        batch.push(msg_kind::FRAME, Vec::new());
        batch.push(msg_kind::CONTROL, b"gossip".to_vec());
        let total = batch.remaining_bytes();
        let mut wire = Vec::new();
        for _ in 0..total {
            {
                let mut slices = Vec::new();
                let n = batch.unwritten_slices(&mut slices, 64);
                assert!(n >= 1);
                wire.push(slices[0][0]);
            }
            batch.advance(1);
        }
        assert!(batch.is_empty());
        assert_eq!(batch.unwritten_slices(&mut Vec::new(), 64), 0);
        let mut asm = StreamAssembler::new();
        asm.feed(&wire);
        assert_eq!(
            asm.next_msg().unwrap(),
            Some((msg_kind::PARCEL, b"abc".to_vec()))
        );
        assert_eq!(asm.next_msg().unwrap(), Some((msg_kind::FRAME, Vec::new())));
        assert_eq!(
            asm.next_msg().unwrap(),
            Some((msg_kind::CONTROL, b"gossip".to_vec()))
        );
        assert_eq!(asm.next_msg().unwrap(), None);
    }

    #[test]
    fn write_batch_slice_cap_and_accounting() {
        let mut batch = WriteBatch::new();
        for i in 0..10u8 {
            batch.push(msg_kind::PARCEL, vec![i; 3]);
        }
        assert_eq!(batch.msg_count(), 10);
        let mut slices = Vec::new();
        // Cap of 4 slices = 2 messages (header + body each).
        let n = batch.unwritten_slices(&mut slices, 4);
        assert_eq!(slices.len(), 4);
        assert_eq!(n, 2 * (MSG_HEADER_LEN + 3));
        batch.advance(n);
        assert_eq!(batch.msg_count(), 8);
        assert_eq!(batch.remaining_bytes(), 8 * (MSG_HEADER_LEN + 3));
    }

    #[test]
    fn write_batch_rewind_resends_partial_front() {
        let mut batch = WriteBatch::new();
        batch.push(msg_kind::PARCEL, b"hello".to_vec());
        batch.advance(MSG_HEADER_LEN + 2); // "he" written
        batch.rewind();
        assert_eq!(batch.remaining_bytes(), MSG_HEADER_LEN + 5);
        let mut slices = Vec::new();
        let mut wire = Vec::new();
        batch.unwritten_slices(&mut slices, 64);
        for s in &slices {
            wire.extend_from_slice(s);
        }
        let mut asm = StreamAssembler::new();
        asm.feed(&wire);
        assert_eq!(
            asm.next_msg().unwrap(),
            Some((msg_kind::PARCEL, b"hello".to_vec()))
        );
    }

    #[test]
    fn write_batch_drain_surrenders_unwritten_messages() {
        let mut batch = WriteBatch::new();
        batch.push(msg_kind::PARCEL, b"a".to_vec());
        batch.push(msg_kind::CONTROL, b"bb".to_vec());
        batch.advance(MSG_HEADER_LEN + 1); // first fully written
        let dead = batch.drain_msgs();
        assert_eq!(dead, vec![(msg_kind::CONTROL, b"bb".to_vec())]);
        assert!(batch.is_empty());
        assert_eq!(batch.remaining_bytes(), 0);
    }

    #[test]
    fn handshake_roundtrip_and_rejection() {
        let h = encode_handshake(42);
        assert_eq!(decode_handshake(&h).unwrap(), 42);
        let mut bad = h;
        bad[0] ^= 0xff;
        assert!(decode_handshake(&bad).is_err());
        let mut wrong_version = h;
        wrong_version[4] = 99;
        assert!(decode_handshake(&wrong_version).is_err());
    }
}
