//! serde `Deserializer` for the wire format.

use crate::buf::WireReader;
use crate::error::{WireError, WireResult};
use serde::de::{Deserialize, Deserializer as SerdeDeserializer};

/// Deserialize a value of type `T` from `input`, requiring that the whole
/// input is consumed (trailing bytes indicate schema drift and are errors).
pub fn from_bytes<'a, T: Deserialize<'a>>(input: &'a [u8]) -> WireResult<T> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    if !de.reader.is_exhausted() {
        return Err(WireError::TrailingBytes(de.reader.remaining()));
    }
    Ok(value)
}

/// serde deserializer reading the px-wire encoding.
pub struct Deserializer<'de> {
    reader: WireReader<'de>,
}

impl<'de> Deserializer<'de> {
    /// New deserializer over `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Self {
            reader: WireReader::new(input),
        }
    }
}

impl<'de> SerdeDeserializer<'de> for Deserializer<'de> {
    type Error = WireError;

    #[inline]
    fn take_bool(&mut self) -> WireResult<bool> {
        match self.reader.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::InvalidBool(b)),
        }
    }

    #[inline]
    fn take_u8(&mut self) -> WireResult<u8> {
        self.reader.get_u8()
    }

    #[inline]
    fn take_u16(&mut self) -> WireResult<u16> {
        self.reader.get_u16()
    }

    #[inline]
    fn take_u32(&mut self) -> WireResult<u32> {
        self.reader.get_u32()
    }

    #[inline]
    fn take_u64(&mut self) -> WireResult<u64> {
        self.reader.get_u64()
    }

    #[inline]
    fn take_u128(&mut self) -> WireResult<u128> {
        self.reader.get_u128()
    }

    #[inline]
    fn take_i8(&mut self) -> WireResult<i8> {
        self.reader.get_i8()
    }

    #[inline]
    fn take_i16(&mut self) -> WireResult<i16> {
        self.reader.get_i16()
    }

    #[inline]
    fn take_i32(&mut self) -> WireResult<i32> {
        self.reader.get_i32()
    }

    #[inline]
    fn take_i64(&mut self) -> WireResult<i64> {
        self.reader.get_i64()
    }

    #[inline]
    fn take_i128(&mut self) -> WireResult<i128> {
        self.reader.get_i128()
    }

    #[inline]
    fn take_f32(&mut self) -> WireResult<f32> {
        self.reader.get_f32()
    }

    #[inline]
    fn take_f64(&mut self) -> WireResult<f64> {
        self.reader.get_f64()
    }

    #[inline]
    fn take_char(&mut self) -> WireResult<char> {
        let scalar = self.reader.get_u32()?;
        char::from_u32(scalar).ok_or(WireError::InvalidChar(scalar))
    }

    #[inline]
    fn take_string(&mut self) -> WireResult<String> {
        let bytes = self.reader.get_len_bytes()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::InvalidUtf8)
    }

    #[inline]
    fn take_bytes(&mut self, n: usize) -> WireResult<&'de [u8]> {
        self.reader.get_bytes(n)
    }

    #[inline]
    fn take_seq_len(&mut self) -> WireResult<usize> {
        let len = self.reader.get_varint()?;
        // Each element costs at least one byte, so a length prefix larger
        // than the remaining input is certainly corrupt (prevents
        // pathological preallocation).
        if len > self.reader.remaining() as u64 {
            return Err(WireError::LengthExceedsInput {
                len,
                remaining: self.reader.remaining(),
            });
        }
        Ok(len as usize)
    }

    #[inline]
    fn take_opt_tag(&mut self) -> WireResult<bool> {
        match self.reader.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::InvalidOptionTag(b)),
        }
    }

    #[inline]
    fn take_variant(&mut self) -> WireResult<u32> {
        let index = self.reader.get_varint()?;
        u32::try_from(index).map_err(|_| WireError::VarintOverflow)
    }
}
