//! serde `Deserializer` for the wire format.

use crate::buf::WireReader;
use crate::error::{WireError, WireResult};
use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};

/// Deserialize a value of type `T` from `input`, requiring that the whole
/// input is consumed (trailing bytes indicate schema drift and are errors).
pub fn from_bytes<'a, T: de::Deserialize<'a>>(input: &'a [u8]) -> WireResult<T> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    if !de.reader.is_exhausted() {
        return Err(WireError::TrailingBytes(de.reader.remaining()));
    }
    Ok(value)
}

/// serde deserializer reading the px-wire encoding.
pub struct Deserializer<'de> {
    reader: WireReader<'de>,
}

impl<'de> Deserializer<'de> {
    /// New deserializer over `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Self {
            reader: WireReader::new(input),
        }
    }

    #[inline]
    fn read_len(&mut self) -> WireResult<usize> {
        let len = self.reader.get_varint()?;
        // Each element costs at least one byte, so a length prefix larger
        // than the remaining input is certainly corrupt.
        if len > self.reader.remaining() as u64 {
            return Err(WireError::LengthExceedsInput {
                len,
                remaining: self.reader.remaining(),
            });
        }
        Ok(len as usize)
    }
}

impl<'de, 'a> de::Deserializer<'de> for &'a mut Deserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> WireResult<V::Value> {
        Err(WireError::Message(
            "px-wire is not self-describing; deserialize_any is unsupported".into(),
        ))
    }

    #[inline]
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.reader.get_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(WireError::InvalidBool(b)),
        }
    }

    #[inline]
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_i8(self.reader.get_i8()?)
    }

    #[inline]
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_i16(self.reader.get_i16()?)
    }

    #[inline]
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_i32(self.reader.get_i32()?)
    }

    #[inline]
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_i64(self.reader.get_i64()?)
    }

    #[inline]
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_i128(self.reader.get_i128()?)
    }

    #[inline]
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_u8(self.reader.get_u8()?)
    }

    #[inline]
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_u16(self.reader.get_u16()?)
    }

    #[inline]
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_u32(self.reader.get_u32()?)
    }

    #[inline]
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_u64(self.reader.get_u64()?)
    }

    #[inline]
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_u128(self.reader.get_u128()?)
    }

    #[inline]
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_f32(self.reader.get_f32()?)
    }

    #[inline]
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_f64(self.reader.get_f64()?)
    }

    #[inline]
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        let scalar = self.reader.get_u32()?;
        let c = char::from_u32(scalar).ok_or(WireError::InvalidChar(scalar))?;
        visitor.visit_char(c)
    }

    #[inline]
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        let bytes = self.reader.get_len_bytes()?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    #[inline]
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        self.deserialize_str(visitor)
    }

    #[inline]
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        let bytes = self.reader.get_len_bytes()?;
        visitor.visit_borrowed_bytes(bytes)
    }

    #[inline]
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        self.deserialize_bytes(visitor)
    }

    #[inline]
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        match self.reader.get_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(WireError::InvalidOptionTag(b)),
        }
    }

    #[inline]
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        visitor.visit_unit()
    }

    #[inline]
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> WireResult<V::Value> {
        visitor.visit_unit()
    }

    #[inline]
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> WireResult<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    #[inline]
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        let len = self.read_len()?;
        visitor.visit_seq(SeqAccess { de: self, left: len })
    }

    #[inline]
    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> WireResult<V::Value> {
        visitor.visit_seq(SeqAccess { de: self, left: len })
    }

    #[inline]
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> WireResult<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    #[inline]
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> WireResult<V::Value> {
        let len = self.read_len()?;
        visitor.visit_map(MapAccess { de: self, left: len })
    }

    #[inline]
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> WireResult<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    #[inline]
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> WireResult<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> WireResult<V::Value> {
        Err(WireError::Message(
            "px-wire encodes no field identifiers".into(),
        ))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> WireResult<V::Value> {
        Err(WireError::Message(
            "px-wire cannot skip unknown fields (format is positional)".into(),
        ))
    }

    #[inline]
    fn is_human_readable(&self) -> bool {
        false
    }
}

struct SeqAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    left: usize,
}

impl<'de> de::SeqAccess<'de> for SeqAccess<'_, 'de> {
    type Error = WireError;

    #[inline]
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> WireResult<Option<T::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    #[inline]
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct MapAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    left: usize,
}

impl<'de> de::MapAccess<'de> for MapAccess<'_, 'de> {
    type Error = WireError;

    #[inline]
    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> WireResult<Option<K::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    #[inline]
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> WireResult<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    #[inline]
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = WireError;
    type Variant = VariantAccess<'a, 'de>;

    #[inline]
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> WireResult<(V::Value, Self::Variant)> {
        let index = self.de.reader.get_varint()?;
        let index = u32::try_from(index).map_err(|_| WireError::VarintOverflow)?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::VariantAccess<'de> for VariantAccess<'_, 'de> {
    type Error = WireError;

    #[inline]
    fn unit_variant(self) -> WireResult<()> {
        Ok(())
    }

    #[inline]
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> WireResult<T::Value> {
        seed.deserialize(self.de)
    }

    #[inline]
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> WireResult<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    #[inline]
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> WireResult<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}
