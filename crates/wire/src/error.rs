//! Error type shared by the serializer and deserializer.

use std::fmt;

/// Result alias for wire operations.
pub type WireResult<T> = Result<T, WireError>;

/// Errors produced while encoding or decoding the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes that were needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A LEB128 varint ran past 10 bytes (would overflow u64).
    VarintOverflow,
    /// A `bool` byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A `char` scalar value was not a valid Unicode code point.
    InvalidChar(u32),
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
    /// An `Option` tag byte was neither 0 nor 1.
    InvalidOptionTag(u8),
    /// A sequence or map was serialized without a known length.
    UnknownLength,
    /// Bytes remained after the top-level value was decoded.
    TrailingBytes(usize),
    /// A decoded length prefix exceeds the remaining input, so the data is
    /// corrupt (prevents pathological preallocation).
    LengthExceedsInput {
        /// Claimed element count.
        len: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Error raised from within serde (custom messages).
    Message(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remain"
            ),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::InvalidBool(b) => write!(f, "invalid bool byte {b:#04x}"),
            WireError::InvalidChar(c) => write!(f, "invalid char scalar {c:#010x}"),
            WireError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireError::InvalidOptionTag(b) => write!(f, "invalid Option tag {b:#04x}"),
            WireError::UnknownLength => {
                write!(f, "sequences without a known length are not supported")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::LengthExceedsInput { len, remaining } => write!(
                f,
                "length prefix {len} exceeds remaining input ({remaining} bytes)"
            ),
            WireError::Message(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for WireError {}

impl serde::ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl serde::de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}
