//! Multi-parcel frames: the batched transport's wire unit.
//!
//! A frame carries zero or more length-prefixed records (encoded parcels)
//! between localities so that per-message transport costs — delay-line
//! submissions, heap operations, run-queue pushes, wakeups — are paid once
//! per frame instead of once per parcel.
//!
//! ## Layout
//!
//! ```text
//! +---------+------------+----------------+-----+----------------+
//! | version | count: u32 | len: u32 | rec | ... | len: u32 | rec |
//! |  (1 B)  |    (LE)    |   (LE)   |     |     |   (LE)   |     |
//! +---------+------------+----------------+-----+----------------+
//! ```
//!
//! Records use a fixed `u32` length prefix (not a varint) so the prefix
//! can be reserved before the record is encoded and patched afterwards:
//! [`FrameBuf::push_record_with`] lets callers encode *directly into the
//! frame's buffer*, which is what removes the per-parcel `Vec` allocation
//! from the send path. The `count` field is likewise patched in place on
//! every push, so [`FrameBuf::as_bytes`] is always a valid frame.
//!
//! Decoding is zero-copy: [`FrameView`] validates the header eagerly and
//! yields `&[u8]` record slices lazily, preserving the scheduler's
//! lazy-per-parcel decode.

use crate::buf::{WireReader, WireWriter};
use crate::error::{WireError, WireResult};

/// Current frame format version byte.
pub const FRAME_VERSION: u8 = 1;

/// Bytes of frame header (version + record count).
pub const FRAME_HEADER_LEN: usize = 1 + 4;

/// Per-record framing overhead (the `u32` length prefix).
pub const RECORD_HEADER_LEN: usize = 4;

/// A reusable encode buffer accumulating length-prefixed records.
///
/// [`FrameBuf::take`] ships the encoded frame and resets the buffer to an
/// empty frame; the allocation strategy reserves the previous frame's size
/// on the next use so steady-state batching settles into a stable
/// capacity.
#[derive(Debug, Clone)]
pub struct FrameBuf {
    w: WireWriter,
    count: u32,
}

impl Default for FrameBuf {
    fn default() -> Self {
        FrameBuf::new()
    }
}

impl FrameBuf {
    /// New empty frame.
    pub fn new() -> FrameBuf {
        FrameBuf::with_capacity(0)
    }

    /// New empty frame with reserved capacity.
    pub fn with_capacity(cap: usize) -> FrameBuf {
        let mut w = WireWriter::with_capacity(cap.max(FRAME_HEADER_LEN));
        w.put_u8(FRAME_VERSION);
        w.put_u32(0);
        FrameBuf { w, count: 0 }
    }

    /// Number of records in the frame.
    #[inline]
    pub fn record_count(&self) -> u32 {
        self.count
    }

    /// Encoded frame size in bytes (header included).
    #[inline]
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True when the frame holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Append an already-encoded record.
    pub fn push_record(&mut self, record: &[u8]) {
        self.push_record_with(|w| w.put_bytes(record));
    }

    /// Append a record encoded in place by `encode`, avoiding any
    /// intermediate allocation. Returns the record's encoded size.
    pub fn push_record_with(&mut self, encode: impl FnOnce(&mut WireWriter)) -> usize {
        let len_at = self.w.len();
        self.w.put_u32(0);
        let start = self.w.len();
        encode(&mut self.w);
        let record_len = self.w.len() - start;
        self.w
            .patch_u32(len_at, u32::try_from(record_len).expect("record > 4 GiB"));
        self.count += 1;
        self.w.patch_u32(1, self.count);
        record_len
    }

    /// The encoded frame (always a valid frame, even mid-fill).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        self.w.as_slice()
    }

    /// Ship the frame: returns the encoded bytes and resets `self` to an
    /// empty frame sized like the one just taken.
    pub fn take(&mut self) -> Vec<u8> {
        let fresh = FrameBuf::with_capacity(self.w.len());
        std::mem::replace(self, fresh).w.into_bytes()
    }

    /// Drop all records, retaining the allocation.
    pub fn clear(&mut self) {
        self.w.clear();
        self.w.put_u8(FRAME_VERSION);
        self.w.put_u32(0);
        self.count = 0;
    }
}

/// A validated, zero-copy view over an encoded frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    records: &'a [u8],
    count: u32,
}

impl<'a> FrameView<'a> {
    /// Validate the header of `bytes` and wrap it.
    pub fn parse(bytes: &'a [u8]) -> WireResult<FrameView<'a>> {
        let mut r = WireReader::new(bytes);
        let version = r.get_u8()?;
        if version != FRAME_VERSION {
            return Err(WireError::Message(format!(
                "unsupported frame version {version}"
            )));
        }
        let count = r.get_u32()?;
        // Each record costs at least its length prefix.
        if u64::from(count) * RECORD_HEADER_LEN as u64 > r.remaining() as u64 {
            return Err(WireError::LengthExceedsInput {
                len: u64::from(count),
                remaining: r.remaining(),
            });
        }
        Ok(FrameView {
            records: &bytes[FRAME_HEADER_LEN..],
            count,
        })
    }

    /// Number of records the header claims.
    #[inline]
    pub fn record_count(&self) -> u32 {
        self.count
    }

    /// Iterate record slices. Decoding is lazy: a corrupt length prefix
    /// surfaces as an `Err` item and ends iteration.
    pub fn records(&self) -> FrameRecords<'a> {
        FrameRecords {
            reader: WireReader::new(self.records),
            left: self.count,
            failed: false,
        }
    }
}

/// Iterator over the records of a [`FrameView`].
#[derive(Debug, Clone)]
pub struct FrameRecords<'a> {
    reader: WireReader<'a>,
    left: u32,
    failed: bool,
}

impl<'a> Iterator for FrameRecords<'a> {
    type Item = WireResult<&'a [u8]>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.left == 0 || self.failed {
            return None;
        }
        self.left -= 1;
        let res = (|| {
            let len = self.reader.get_u32()? as usize;
            self.reader.get_bytes(len)
        })();
        if res.is_err() {
            self.failed = true;
        }
        Some(res)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = if self.failed { 0 } else { self.left as usize };
        (0, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(bytes: &[u8]) -> Vec<Vec<u8>> {
        FrameView::parse(bytes)
            .unwrap()
            .records()
            .map(|r| r.unwrap().to_vec())
            .collect()
    }

    #[test]
    fn empty_frame_roundtrips() {
        let mut f = FrameBuf::new();
        assert!(f.is_empty());
        assert_eq!(f.len(), FRAME_HEADER_LEN);
        let bytes = f.take();
        let v = FrameView::parse(&bytes).unwrap();
        assert_eq!(v.record_count(), 0);
        assert_eq!(v.records().count(), 0);
    }

    #[test]
    fn records_roundtrip_in_order() {
        let mut f = FrameBuf::new();
        f.push_record(b"alpha");
        f.push_record(b"");
        f.push_record_with(|w| {
            w.put_u64(0xdead_beef);
        });
        assert_eq!(f.record_count(), 3);
        let bytes = f.take();
        let recs = collect(&bytes);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], b"alpha");
        assert_eq!(recs[1], b"");
        assert_eq!(recs[2], 0xdead_beef_u64.to_le_bytes());
    }

    #[test]
    fn take_resets_to_empty() {
        let mut f = FrameBuf::new();
        f.push_record(b"x");
        let first = f.take();
        assert!(f.is_empty());
        assert_eq!(f.len(), FRAME_HEADER_LEN);
        f.push_record(b"y");
        let second = f.take();
        assert_eq!(collect(&first), vec![b"x".to_vec()]);
        assert_eq!(collect(&second), vec![b"y".to_vec()]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut f = FrameBuf::with_capacity(1024);
        f.push_record(&[7u8; 100]);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.len(), FRAME_HEADER_LEN);
    }

    #[test]
    fn as_bytes_valid_mid_fill() {
        let mut f = FrameBuf::new();
        f.push_record(b"one");
        let v = FrameView::parse(f.as_bytes()).unwrap();
        assert_eq!(v.record_count(), 1);
        f.push_record(b"two");
        let v = FrameView::parse(f.as_bytes()).unwrap();
        assert_eq!(v.record_count(), 2);
    }

    #[test]
    fn bad_version_rejected() {
        let mut f = FrameBuf::new();
        f.push_record(b"x");
        let mut bytes = f.take();
        bytes[0] = 99;
        assert!(FrameView::parse(&bytes).is_err());
    }

    #[test]
    fn truncated_record_is_error_item() {
        let mut f = FrameBuf::new();
        f.push_record(b"hello world");
        let bytes = f.take();
        let cut = &bytes[..bytes.len() - 4];
        let v = FrameView::parse(cut).unwrap();
        let items: Vec<_> = v.records().collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }

    #[test]
    fn impossible_count_rejected_eagerly() {
        let mut bytes = vec![FRAME_VERSION];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            FrameView::parse(&bytes),
            Err(WireError::LengthExceedsInput { .. })
        ));
    }
}
