//! Multi-parcel frames: the batched transport's wire unit.
//!
//! A frame carries zero or more length-prefixed records (encoded parcels)
//! between localities so that per-message transport costs — delay-line
//! submissions, heap operations, run-queue pushes, wakeups — are paid once
//! per frame instead of once per parcel.
//!
//! ## Layout
//!
//! ```text
//! +---------+------------+----------------+-----+----------------+
//! | version | count: u32 | len: u32 | rec | ... | len: u32 | rec |
//! |  (1 B)  |    (LE)    |   (LE)   |     |     |   (LE)   |     |
//! +---------+------------+----------------+-----+----------------+
//! ```
//!
//! Records use a fixed `u32` length prefix (not a varint) so the prefix
//! can be reserved before the record is encoded and patched afterwards:
//! [`FrameBuf::push_record_with`] lets callers encode *directly into the
//! frame's buffer*, which is what removes the per-parcel `Vec` allocation
//! from the send path. The `count` field is likewise patched in place on
//! every push, so [`FrameBuf::as_bytes`] is always a valid frame.
//!
//! Decoding is zero-copy: [`FrameView`] validates the header eagerly and
//! yields `&[u8]` record slices lazily, preserving the scheduler's
//! lazy-per-parcel decode.
//!
//! ## Integrity (version 2)
//!
//! Frames that leave the process boundary (the TCP transport) use
//! version [`FRAME_VERSION_CHECKSUM`]: the same layout plus a 4-byte
//! FNV-1a trailer over header + records, appended when the frame is
//! shipped ([`FrameBuf::take`]) and verified by [`FrameView::parse`]. A
//! corrupt frame then dies loudly at the decode layer instead of
//! misparsing records. The checksum is *version-gated*: version-1 frames
//! (the in-process transport) carry no trailer and their bytes are
//! bit-identical to the pre-checksum format.

use crate::buf::{WireReader, WireWriter};
use crate::error::{WireError, WireResult};

/// Original frame format version byte (no integrity trailer).
pub const FRAME_VERSION: u8 = 1;

/// Frame format with a 4-byte FNV-1a checksum trailer (used by
/// transports that cross a process boundary).
pub const FRAME_VERSION_CHECKSUM: u8 = 2;

/// Bytes of frame header (version + record count).
pub const FRAME_HEADER_LEN: usize = 1 + 4;

/// Per-record framing overhead (the `u32` length prefix).
pub const RECORD_HEADER_LEN: usize = 4;

/// Bytes of the version-2 integrity trailer.
pub const FRAME_TRAILER_LEN: usize = 4;

/// FNV-1a 32-bit checksum (the version-2 frame trailer). Cheap, no
/// table, good enough to catch the torn/corrupt frames a socket stream
/// can produce; it is an integrity check, not an authenticity one.
pub fn frame_checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A reusable encode buffer accumulating length-prefixed records.
///
/// [`FrameBuf::take`] ships the encoded frame and resets the buffer to an
/// empty frame; the allocation strategy reserves the previous frame's size
/// on the next use so steady-state batching settles into a stable
/// capacity.
#[derive(Debug, Clone)]
pub struct FrameBuf {
    w: WireWriter,
    count: u32,
    version: u8,
}

impl Default for FrameBuf {
    fn default() -> Self {
        FrameBuf::new()
    }
}

impl FrameBuf {
    /// New empty version-1 frame (no integrity trailer; the bit-identical
    /// in-process format).
    pub fn new() -> FrameBuf {
        FrameBuf::with_capacity(0)
    }

    /// New empty version-1 frame with reserved capacity.
    pub fn with_capacity(cap: usize) -> FrameBuf {
        FrameBuf::with_capacity_version(cap, FRAME_VERSION)
    }

    /// New empty frame of `version` ([`FRAME_VERSION`] or
    /// [`FRAME_VERSION_CHECKSUM`]).
    pub fn with_version(version: u8) -> FrameBuf {
        FrameBuf::with_capacity_version(0, version)
    }

    /// New empty frame of `version` with reserved capacity.
    pub fn with_capacity_version(cap: usize, version: u8) -> FrameBuf {
        debug_assert!(
            version == FRAME_VERSION || version == FRAME_VERSION_CHECKSUM,
            "unknown frame version {version}"
        );
        let mut w = WireWriter::with_capacity(cap.max(FRAME_HEADER_LEN));
        w.put_u8(version);
        w.put_u32(0);
        FrameBuf {
            w,
            count: 0,
            version,
        }
    }

    /// The frame format version this buffer encodes.
    #[inline]
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Number of records in the frame.
    #[inline]
    pub fn record_count(&self) -> u32 {
        self.count
    }

    /// Encoded frame size in bytes (header included).
    #[inline]
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True when the frame holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Append an already-encoded record.
    pub fn push_record(&mut self, record: &[u8]) {
        self.push_record_with(|w| w.put_bytes(record));
    }

    /// Append a record encoded in place by `encode`, avoiding any
    /// intermediate allocation. Returns the record's encoded size.
    pub fn push_record_with(&mut self, encode: impl FnOnce(&mut WireWriter)) -> usize {
        let len_at = self.w.len();
        self.w.put_u32(0);
        let start = self.w.len();
        encode(&mut self.w);
        let record_len = self.w.len() - start;
        self.w
            .patch_u32(len_at, u32::try_from(record_len).expect("record > 4 GiB"));
        self.count += 1;
        self.w.patch_u32(1, self.count);
        record_len
    }

    /// The encoded frame. For version 1 this is always a valid frame,
    /// even mid-fill; a version-2 frame is finalized (checksum trailer
    /// appended) only by [`FrameBuf::take`].
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        self.w.as_slice()
    }

    /// Ship the frame: returns the encoded bytes (appending the
    /// integrity trailer on version-2 frames) and resets `self` to an
    /// empty frame of the same version sized like the one just taken.
    pub fn take(&mut self) -> Vec<u8> {
        let fresh = FrameBuf::with_capacity_version(self.w.len(), self.version);
        let mut w = std::mem::replace(self, fresh).w;
        if self.version == FRAME_VERSION_CHECKSUM {
            let sum = frame_checksum(w.as_slice());
            w.put_u32(sum);
        }
        w.into_bytes()
    }

    /// Drop all records, retaining the allocation and version.
    pub fn clear(&mut self) {
        self.w.clear();
        self.w.put_u8(self.version);
        self.w.put_u32(0);
        self.count = 0;
    }
}

/// A validated, zero-copy view over an encoded frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    records: &'a [u8],
    count: u32,
}

impl<'a> FrameView<'a> {
    /// Validate the header of `bytes` (and, for version-2 frames, verify
    /// the checksum trailer) and wrap it.
    pub fn parse(bytes: &'a [u8]) -> WireResult<FrameView<'a>> {
        let mut r = WireReader::new(bytes);
        let version = r.get_u8()?;
        let records_end = match version {
            FRAME_VERSION => bytes.len(),
            FRAME_VERSION_CHECKSUM => {
                if bytes.len() < FRAME_HEADER_LEN + FRAME_TRAILER_LEN {
                    return Err(WireError::Message(
                        "checksummed frame shorter than header + trailer".into(),
                    ));
                }
                let body_end = bytes.len() - FRAME_TRAILER_LEN;
                let want = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
                let got = frame_checksum(&bytes[..body_end]);
                if want != got {
                    return Err(WireError::Message(format!(
                        "frame checksum mismatch: trailer {want:#010x}, computed {got:#010x}"
                    )));
                }
                body_end
            }
            _ => {
                return Err(WireError::Message(format!(
                    "unsupported frame version {version}"
                )))
            }
        };
        let count = r.get_u32()?;
        // Each record costs at least its length prefix. (`records_end` is
        // at least FRAME_HEADER_LEN: the u32 read above succeeded, and the
        // v2 arm checked header + trailer explicitly.)
        let remaining = records_end - FRAME_HEADER_LEN;
        if u64::from(count) * RECORD_HEADER_LEN as u64 > remaining as u64 {
            return Err(WireError::LengthExceedsInput {
                len: u64::from(count),
                remaining,
            });
        }
        Ok(FrameView {
            records: &bytes[FRAME_HEADER_LEN..records_end],
            count,
        })
    }

    /// Number of records the header claims.
    #[inline]
    pub fn record_count(&self) -> u32 {
        self.count
    }

    /// Iterate record slices. Decoding is lazy: a corrupt length prefix
    /// surfaces as an `Err` item and ends iteration.
    pub fn records(&self) -> FrameRecords<'a> {
        FrameRecords {
            reader: WireReader::new(self.records),
            left: self.count,
            failed: false,
        }
    }
}

/// Iterator over the records of a [`FrameView`].
#[derive(Debug, Clone)]
pub struct FrameRecords<'a> {
    reader: WireReader<'a>,
    left: u32,
    failed: bool,
}

impl<'a> Iterator for FrameRecords<'a> {
    type Item = WireResult<&'a [u8]>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.left == 0 || self.failed {
            return None;
        }
        self.left -= 1;
        let res = (|| {
            let len = self.reader.get_u32()? as usize;
            self.reader.get_bytes(len)
        })();
        if res.is_err() {
            self.failed = true;
        }
        Some(res)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = if self.failed { 0 } else { self.left as usize };
        (0, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(bytes: &[u8]) -> Vec<Vec<u8>> {
        FrameView::parse(bytes)
            .unwrap()
            .records()
            .map(|r| r.unwrap().to_vec())
            .collect()
    }

    #[test]
    fn empty_frame_roundtrips() {
        let mut f = FrameBuf::new();
        assert!(f.is_empty());
        assert_eq!(f.len(), FRAME_HEADER_LEN);
        let bytes = f.take();
        let v = FrameView::parse(&bytes).unwrap();
        assert_eq!(v.record_count(), 0);
        assert_eq!(v.records().count(), 0);
    }

    #[test]
    fn records_roundtrip_in_order() {
        let mut f = FrameBuf::new();
        f.push_record(b"alpha");
        f.push_record(b"");
        f.push_record_with(|w| {
            w.put_u64(0xdead_beef);
        });
        assert_eq!(f.record_count(), 3);
        let bytes = f.take();
        let recs = collect(&bytes);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], b"alpha");
        assert_eq!(recs[1], b"");
        assert_eq!(recs[2], 0xdead_beef_u64.to_le_bytes());
    }

    #[test]
    fn take_resets_to_empty() {
        let mut f = FrameBuf::new();
        f.push_record(b"x");
        let first = f.take();
        assert!(f.is_empty());
        assert_eq!(f.len(), FRAME_HEADER_LEN);
        f.push_record(b"y");
        let second = f.take();
        assert_eq!(collect(&first), vec![b"x".to_vec()]);
        assert_eq!(collect(&second), vec![b"y".to_vec()]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut f = FrameBuf::with_capacity(1024);
        f.push_record(&[7u8; 100]);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.len(), FRAME_HEADER_LEN);
    }

    #[test]
    fn as_bytes_valid_mid_fill() {
        let mut f = FrameBuf::new();
        f.push_record(b"one");
        let v = FrameView::parse(f.as_bytes()).unwrap();
        assert_eq!(v.record_count(), 1);
        f.push_record(b"two");
        let v = FrameView::parse(f.as_bytes()).unwrap();
        assert_eq!(v.record_count(), 2);
    }

    #[test]
    fn bad_version_rejected() {
        let mut f = FrameBuf::new();
        f.push_record(b"x");
        let mut bytes = f.take();
        bytes[0] = 99;
        assert!(FrameView::parse(&bytes).is_err());
    }

    #[test]
    fn truncated_record_is_error_item() {
        let mut f = FrameBuf::new();
        f.push_record(b"hello world");
        let bytes = f.take();
        let cut = &bytes[..bytes.len() - 4];
        let v = FrameView::parse(cut).unwrap();
        let items: Vec<_> = v.records().collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }

    /// Golden layout pin for both versions: the version-1 bytes must be
    /// exactly the pre-checksum format (the in-process transport promises
    /// bit-identical frames), and version 2 must differ only in the
    /// version byte plus a 4-byte FNV-1a trailer.
    #[test]
    fn golden_layout_v1_and_v2() {
        let mut expected_v1 = vec![FRAME_VERSION];
        expected_v1.extend_from_slice(&1u32.to_le_bytes()); // count
        expected_v1.extend_from_slice(&5u32.to_le_bytes()); // record len
        expected_v1.extend_from_slice(b"alpha");
        let mut f1 = FrameBuf::new();
        f1.push_record(b"alpha");
        assert_eq!(f1.take(), expected_v1, "v1 layout drifted");

        let mut expected_v2 = expected_v1.clone();
        expected_v2[0] = FRAME_VERSION_CHECKSUM;
        let sum = frame_checksum(&expected_v2);
        expected_v2.extend_from_slice(&sum.to_le_bytes());
        let mut f2 = FrameBuf::with_version(FRAME_VERSION_CHECKSUM);
        f2.push_record(b"alpha");
        assert_eq!(f2.take(), expected_v2, "v2 layout drifted");
    }

    #[test]
    fn checksummed_frame_roundtrips() {
        let mut f = FrameBuf::with_version(FRAME_VERSION_CHECKSUM);
        f.push_record(b"one");
        f.push_record(b"two");
        let bytes = f.take();
        assert!(f.is_empty());
        assert_eq!(f.version(), FRAME_VERSION_CHECKSUM, "take keeps version");
        assert_eq!(collect(&bytes), vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn corrupt_checksummed_frame_rejected() {
        let mut f = FrameBuf::with_version(FRAME_VERSION_CHECKSUM);
        f.push_record(b"payload bytes here");
        let mut bytes = f.take();
        // Flip one payload bit: v1 parsing would happily misparse this;
        // the trailer catches it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = FrameView::parse(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("checksum"),
            "expected checksum error, got: {err}"
        );
        // Too-short v2 input is rejected before touching the trailer.
        assert!(FrameView::parse(&[FRAME_VERSION_CHECKSUM, 0, 0]).is_err());
    }

    #[test]
    fn clear_retains_version() {
        let mut f = FrameBuf::with_version(FRAME_VERSION_CHECKSUM);
        f.push_record(b"x");
        f.clear();
        assert!(f.is_empty());
        f.push_record(b"y");
        let bytes = f.take();
        assert_eq!(bytes[0], FRAME_VERSION_CHECKSUM);
        assert_eq!(collect(&bytes), vec![b"y".to_vec()]);
    }

    #[test]
    fn impossible_count_rejected_eagerly() {
        let mut bytes = vec![FRAME_VERSION];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            FrameView::parse(&bytes),
            Err(WireError::LengthExceedsInput { .. })
        ));
    }
}
