//! Low-level byte writer/reader used by the serde adapters.
//!
//! These are also usable directly for hand-rolled framing (the parcel
//! header in `px-core` uses them to avoid serde overhead on the hot path).

use crate::error::{WireError, WireResult};

/// Growable little-endian byte writer.
///
/// Thin wrapper over `Vec<u8>` with fixed-width and LEB128 encoders. All
/// writers are `#[inline]` — they sit on the parcel serialization fast path.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// New writer with reserved capacity (avoids regrowth for known sizes).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrow the bytes written so far.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Clear contents, retaining capacity (buffer reuse on hot paths).
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Append a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u128`, little-endian.
    #[inline]
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i8`.
    #[inline]
    pub fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Append an `i16`, little-endian.
    #[inline]
    pub fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }

    /// Append an `i32`, little-endian.
    #[inline]
    pub fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    /// Append an `i64`, little-endian.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Append an `i128`, little-endian.
    #[inline]
    pub fn put_i128(&mut self, v: i128) {
        self.put_u128(v as u128);
    }

    /// Append an `f32` as IEEE-754 bits.
    #[inline]
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as IEEE-754 bits.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a LEB128-encoded unsigned varint (1–10 bytes).
    #[inline]
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append raw bytes with no framing.
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Overwrite 4 already-written bytes at `pos` with a little-endian
    /// `u32`. Backs reserve-then-patch framing (frame record lengths and
    /// counts), where a length is only known after its content is encoded.
    #[inline]
    pub fn patch_u32(&mut self, pos: usize, v: u32) {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Append a LEB128 length prefix followed by the bytes.
    #[inline]
    pub fn put_len_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_bytes(bytes);
    }
}

/// Cursor-style reader over a borrowed byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// New reader positioned at the start of `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Self { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Current read offset.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True if the whole input has been consumed.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.input.len()
    }

    #[inline]
    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    #[inline]
    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    #[inline]
    pub fn get_u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `u128`.
    #[inline]
    pub fn get_u128(&mut self) -> WireResult<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Read an `i8`.
    #[inline]
    pub fn get_i8(&mut self) -> WireResult<i8> {
        Ok(self.get_u8()? as i8)
    }

    /// Read a little-endian `i16`.
    #[inline]
    pub fn get_i16(&mut self) -> WireResult<i16> {
        Ok(self.get_u16()? as i16)
    }

    /// Read a little-endian `i32`.
    #[inline]
    pub fn get_i32(&mut self) -> WireResult<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Read a little-endian `i64`.
    #[inline]
    pub fn get_i64(&mut self) -> WireResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a little-endian `i128`.
    #[inline]
    pub fn get_i128(&mut self) -> WireResult<i128> {
        Ok(self.get_u128()? as i128)
    }

    /// Read an IEEE-754 `f32`.
    #[inline]
    pub fn get_f32(&mut self) -> WireResult<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an IEEE-754 `f64`.
    #[inline]
    pub fn get_f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a LEB128 unsigned varint.
    #[inline]
    pub fn get_varint(&mut self) -> WireResult<u64> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Read `n` raw bytes, borrowing from the input.
    #[inline]
    pub fn get_bytes(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n)
    }

    /// Read a LEB128 length prefix then that many bytes (borrowed).
    #[inline]
    pub fn get_len_bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(WireError::LengthExceedsInput {
                len,
                remaining: self.remaining(),
            });
        }
        self.take(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(0xab);
        w.put_u16(0xcdef);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_i32(-42);
        w.put_f64(2.5);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0xcdef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert!(r.is_exhausted());
    }

    #[test]
    fn varint_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut w = WireWriter::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v, "varint {v}");
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn varint_sizes() {
        let size = |v: u64| {
            let mut w = WireWriter::new();
            w.put_varint(v);
            w.len()
        };
        assert_eq!(size(0), 1);
        assert_eq!(size(127), 1);
        assert_eq!(size(128), 2);
        assert_eq!(size(u64::MAX), 10);
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes cannot encode a u64.
        let bytes = [0xffu8; 11];
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.get_varint(), Err(WireError::VarintOverflow)));
    }

    #[test]
    fn eof_reported_with_counts() {
        let mut r = WireReader::new(&[1, 2]);
        match r.get_u64() {
            Err(WireError::UnexpectedEof { needed, remaining }) => {
                assert_eq!(needed, 8);
                assert_eq!(remaining, 2);
            }
            other => panic!("expected EOF error, got {other:?}"),
        }
    }

    #[test]
    fn len_bytes_guard_against_huge_prefix() {
        let mut w = WireWriter::new();
        w.put_varint(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(
            r.get_len_bytes(),
            Err(WireError::LengthExceedsInput { .. })
        ));
    }

    #[test]
    fn writer_reuse_after_clear() {
        let mut w = WireWriter::with_capacity(64);
        w.put_u64(1);
        let cap = w.buf.capacity();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.buf.capacity(), cap);
    }
}
