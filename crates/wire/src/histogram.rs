//! Wire encoding of latency histograms.
//!
//! The metrics plane in `px-core` keeps log-bucketed latency histograms
//! per locality and merges them cluster-wide with `__sys/metrics_pull`
//! parcels, so the bucket counts must cross the wire like any payload.
//! The encoding is fixed here, next to the parcel payload format, because
//! both sides of the pull — and any future peer implementation — must
//! agree on it byte for byte.
//!
//! Layout (little-endian, matching the rest of the format):
//!
//! | Field | Encoding |
//! |---|---|
//! | `count` | `u64` — total recorded samples |
//! | `sum` | `u64` — sum of recorded values (nanoseconds) |
//! | cell count | LEB128 number of non-empty cells |
//! | per cell | `u32` bucket index + `u64` bucket count |
//!
//! The cell list is **canonical**: indices strictly increasing, counts
//! nonzero. The decoder rejects non-canonical input, so for every
//! decodable byte string `decode ∘ encode` is the identity *and*
//! `encode ∘ decode` is bit-identical — histograms survive frame batching
//! and re-encoding without drift (proptested in
//! `tests/histogram_proptest.rs`).

use crate::buf::{WireReader, WireWriter};
use crate::error::{WireError, WireResult};

/// A histogram as it crosses the wire: sparse non-empty bucket cells plus
/// the count/sum totals. The dense, atomic view lives in `px-core`
/// (`metrics::Histogram`); this struct is the schema both sides agree on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireHistogram {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (nanoseconds).
    pub sum: u64,
    /// Non-empty cells as `(bucket index, bucket count)`, indices strictly
    /// increasing and counts nonzero (the canonical form).
    pub cells: Vec<(u32, u64)>,
}

impl WireHistogram {
    /// Encode to wire bytes (see the module docs for the layout table).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(8 + 8 + 1 + 12 * self.cells.len());
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Encode into a caller-provided buffer (frame-batched pulls append
    /// several histograms into one payload).
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_varint(self.cells.len() as u64);
        for &(idx, n) in &self.cells {
            w.put_u32(idx);
            w.put_u64(n);
        }
    }

    /// Decode from a reader positioned at a histogram (several may be
    /// concatenated in one pull payload). Rejects non-canonical cell
    /// lists — out-of-order or duplicate indices, zero counts — so the
    /// accepted byte set round-trips bit-identically.
    pub fn decode_from(r: &mut WireReader<'_>) -> WireResult<WireHistogram> {
        let count = r.get_u64()?;
        let sum = r.get_u64()?;
        let n = r.get_varint()? as usize;
        let mut cells = Vec::with_capacity(n.min(4096));
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let idx = r.get_u32()?;
            let c = r.get_u64()?;
            if c == 0 {
                return Err(WireError::Message("histogram cell with zero count".into()));
            }
            if prev.is_some_and(|p| p >= idx) {
                return Err(WireError::Message(
                    "histogram cell indices not strictly increasing".into(),
                ));
            }
            prev = Some(idx);
            cells.push((idx, c));
        }
        Ok(WireHistogram { count, sum, cells })
    }

    /// Decode from wire bytes holding exactly one histogram.
    pub fn decode(bytes: &[u8]) -> WireResult<WireHistogram> {
        let mut r = WireReader::new(bytes);
        let h = WireHistogram::decode_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Message("trailing bytes after histogram".into()));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WireHistogram {
        WireHistogram {
            count: 7,
            sum: 123_456,
            cells: vec![(0, 2), (17, 1), (400, 4)],
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        assert_eq!(WireHistogram::decode(&h.encode()).unwrap(), h);
        let empty = WireHistogram::default();
        assert_eq!(WireHistogram::decode(&empty.encode()).unwrap(), empty);
    }

    /// Acceptance pin: the byte layout is fixed — count, sum, cell count,
    /// then `(u32 index, u64 count)` pairs, all little-endian. A drift
    /// here would silently corrupt cross-version metrics pulls.
    #[test]
    fn golden_layout() {
        let h = sample();
        let mut expected = Vec::new();
        expected.extend_from_slice(&7u64.to_le_bytes());
        expected.extend_from_slice(&123_456u64.to_le_bytes());
        expected.push(3); // cell count varint
        expected.extend_from_slice(&0u32.to_le_bytes());
        expected.extend_from_slice(&2u64.to_le_bytes());
        expected.extend_from_slice(&17u32.to_le_bytes());
        expected.extend_from_slice(&1u64.to_le_bytes());
        expected.extend_from_slice(&400u32.to_le_bytes());
        expected.extend_from_slice(&4u64.to_le_bytes());
        assert_eq!(h.encode(), expected, "WireHistogram layout drifted");
    }

    #[test]
    fn non_canonical_rejected() {
        // Zero count.
        let bad = WireHistogram {
            count: 1,
            sum: 1,
            cells: vec![(3, 0)],
        };
        assert!(WireHistogram::decode(&bad.encode()).is_err());
        // Out-of-order indices.
        let bad = WireHistogram {
            count: 2,
            sum: 2,
            cells: vec![(5, 1), (3, 1)],
        };
        assert!(WireHistogram::decode(&bad.encode()).is_err());
        // Duplicate indices.
        let bad = WireHistogram {
            count: 2,
            sum: 2,
            cells: vec![(5, 1), (5, 1)],
        };
        assert!(WireHistogram::decode(&bad.encode()).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().encode();
        assert!(WireHistogram::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(WireHistogram::decode(&[]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0xff);
        assert!(WireHistogram::decode(&trailing).is_err());
    }

    #[test]
    fn concatenated_histograms_decode_in_sequence() {
        let a = sample();
        let b = WireHistogram {
            count: 1,
            sum: 9,
            cells: vec![(9, 1)],
        };
        let mut w = WireWriter::new();
        a.encode_into(&mut w);
        b.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(WireHistogram::decode_from(&mut r).unwrap(), a);
        assert_eq!(WireHistogram::decode_from(&mut r).unwrap(), b);
        assert_eq!(r.remaining(), 0);
    }
}
