//! Property tests for [`px_wire::WireHistogram`]: an encoded histogram
//! must survive frame batching and arbitrary stream splits bit-identical
//! — the bucket counts a rank ships are exactly the counts the
//! aggregator decodes, and the canonical sparse form round-trips with no
//! tolerance for re-encoding drift (merged cluster metrics are only
//! trustworthy if the wire never perturbs a cell).

use proptest::prelude::*;
use px_wire::stream::{encode_msg_header, msg_kind, StreamAssembler};
use px_wire::{FrameBuf, FrameView, WireHistogram, WireReader, WireWriter};

/// Canonical sparse cells: strictly increasing indices, nonzero counts —
/// the only form the decoder accepts, which is what makes encode∘decode
/// bit-identical.
fn arb_hist() -> impl Strategy<Value = WireHistogram> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec((0u32..2048, 1u64..u64::MAX), 0..48),
    )
        .prop_map(|(count, sum, mut cells)| {
            cells.sort_unstable_by_key(|&(idx, _)| idx);
            cells.dedup_by_key(|&mut (idx, _)| idx);
            WireHistogram { count, sum, cells }
        })
}

/// Feed `bytes` to a [`StreamAssembler`] split at `cuts` and collect the
/// reassembled messages.
fn reassemble(bytes: &[u8], cuts: &[usize]) -> Vec<(u8, Vec<u8>)> {
    let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries.push(bytes.len());
    let mut a = StreamAssembler::new();
    let mut out = Vec::new();
    let mut start = 0;
    for end in boundaries {
        if end < start {
            continue;
        }
        a.feed(&bytes[start..end]);
        while let Some(msg) = a.next_msg().expect("valid stream never errors") {
            out.push(msg);
        }
        start = end;
    }
    out
}

proptest! {
    /// encode → decode → re-encode is byte-identical for any canonical
    /// histogram, and the decoded struct equals the original.
    #[test]
    fn roundtrip_is_bit_identical(h in arb_hist()) {
        let bytes = h.encode();
        let back = WireHistogram::decode(&bytes).expect("canonical decodes");
        prop_assert_eq!(&back, &h);
        prop_assert_eq!(back.encode(), bytes);
    }

    /// A batch of histograms rides a frame and arbitrary stream splits
    /// bit-identical: record boundaries and cell contents both survive.
    #[test]
    fn histograms_survive_batching_and_splits(
        hists in proptest::collection::vec(arb_hist(), 1..12),
        cuts in proptest::collection::vec(any::<usize>(), 0..32),
    ) {
        let mut f = FrameBuf::new();
        for h in &hists {
            f.push_record(&h.encode());
        }
        let frame = f.take();
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_msg_header(msg_kind::FRAME, frame.len() as u32));
        stream.extend_from_slice(&frame);

        let msgs = reassemble(&stream, &cuts);
        prop_assert_eq!(msgs.len(), 1);
        let (kind, body) = &msgs[0];
        prop_assert_eq!(*kind, msg_kind::FRAME);
        let view = FrameView::parse(body).expect("frame parses");
        prop_assert_eq!(view.record_count() as usize, hists.len());
        for (rec, h) in view.records().zip(&hists) {
            let rec = rec.expect("record ok");
            prop_assert_eq!(rec, h.encode().as_slice(), "bytes ride verbatim");
            let back = WireHistogram::decode(rec).expect("decodes");
            prop_assert_eq!(&back, h);
        }
    }

    /// Several histograms concatenated in one buffer (the
    /// `MetricsSnapshot` encoding) decode in sequence with no
    /// inter-record drift: each `decode_from` consumes exactly its own
    /// bytes.
    #[test]
    fn concatenated_histograms_decode_in_sequence(
        hists in proptest::collection::vec(arb_hist(), 1..8),
    ) {
        let mut w = WireWriter::new();
        for h in &hists {
            h.encode_into(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for h in &hists {
            let back = WireHistogram::decode_from(&mut r).expect("decodes in place");
            prop_assert_eq!(&back, h);
        }
        prop_assert_eq!(r.remaining(), 0, "no trailing bytes");
    }

    /// Truncating an encoded histogram anywhere strictly inside it must
    /// error, never mis-decode: a short read cannot silently produce a
    /// plausible-but-wrong merge input.
    #[test]
    fn truncation_errors_loudly(h in arb_hist(), cut in any::<usize>()) {
        let bytes = h.encode();
        let cut = cut % bytes.len(); // strictly shorter than the encoding
        prop_assert!(WireHistogram::decode(&bytes[..cut]).is_err());
    }
}
