//! Property tests for the TCP stream layer: a message sequence fed to
//! [`StreamAssembler`] in arbitrary chunks — frames split at arbitrary
//! byte boundaries across reads, many messages per read, one byte per
//! read — must reassemble to exactly the messages the whole-buffer feed
//! yields, and checksummed frames carried as message bodies must decode
//! identically to whole-frame decode.

use proptest::prelude::*;
use px_wire::stream::{encode_msg_header, msg_kind, StreamAssembler};
use px_wire::{FrameBuf, FrameView, FRAME_VERSION_CHECKSUM};

/// Encode `(kind, body)` messages into one contiguous byte stream.
fn encode_stream(msgs: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (kind, body) in msgs {
        out.extend_from_slice(&encode_msg_header(*kind, body.len() as u32));
        out.extend_from_slice(body);
    }
    out
}

/// Feed `bytes` split at `cuts` (relative positions) and collect every
/// reassembled message.
fn reassemble_chunked(bytes: &[u8], cuts: &[usize]) -> Vec<(u8, Vec<u8>)> {
    let mut a = StreamAssembler::new();
    let mut out = Vec::new();
    let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries.push(bytes.len());
    let mut start = 0;
    for end in boundaries {
        if end < start {
            continue;
        }
        a.feed(&bytes[start..end]);
        while let Some(msg) = a.next_msg().expect("valid stream never errors") {
            out.push(msg);
        }
        start = end;
    }
    assert_eq!(a.pending_bytes(), 0, "no residue after a complete stream");
    out
}

fn arb_msgs() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec(
        (
            0u8..msg_kind::MAX + 1,
            proptest::collection::vec(any::<u8>(), 0..300),
        ),
        0..12,
    )
}

proptest! {
    /// Any chunking reproduces the whole-feed message sequence.
    #[test]
    fn arbitrary_splits_reassemble_identically(
        msgs in arb_msgs(),
        cuts in proptest::collection::vec(any::<usize>(), 0..40),
    ) {
        let stream = encode_stream(&msgs);
        let whole = reassemble_chunked(&stream, &[]);
        let chunked = reassemble_chunked(&stream, &cuts);
        prop_assert_eq!(&whole, &msgs);
        prop_assert_eq!(chunked, msgs);
    }

    /// A checksummed multi-parcel frame split at arbitrary read
    /// boundaries decodes to the same records as whole-frame decode.
    #[test]
    fn split_checksummed_frames_decode_identically(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..128),
            0..16,
        ),
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        let mut f = FrameBuf::with_version(FRAME_VERSION_CHECKSUM);
        for r in &records {
            f.push_record(r);
        }
        let frame_bytes = f.take();
        let whole: Vec<Vec<u8>> = FrameView::parse(&frame_bytes)
            .expect("frame parses")
            .records()
            .map(|r| r.expect("record ok").to_vec())
            .collect();
        prop_assert_eq!(&whole, &records);

        let stream = encode_stream(&[(msg_kind::FRAME, frame_bytes)]);
        let msgs = reassemble_chunked(&stream, &cuts);
        prop_assert_eq!(msgs.len(), 1);
        let (kind, body) = &msgs[0];
        prop_assert_eq!(*kind, msg_kind::FRAME);
        let split: Vec<Vec<u8>> = FrameView::parse(body)
            .expect("reassembled frame parses")
            .records()
            .map(|r| r.expect("record ok").to_vec())
            .collect();
        prop_assert_eq!(split, records);
    }
}
