//! Property tests for the write half of the TCP stream layer: the
//! mirror image of `stream_proptest`. A [`WriteBatch`] drained through
//! arbitrary *write* boundaries — the kernel consuming any number of
//! bytes per `write_vectored`, mid-header or mid-body, under any slice
//! cap — must put exactly the same bytes on the wire as one contiguous
//! write, so the receive side reassembles the identical messages and
//! checksummed v2 frames decode clean.

use proptest::prelude::*;
use px_wire::stream::{msg_kind, StreamAssembler, WriteBatch};
use px_wire::{FrameBuf, FrameView, FRAME_VERSION_CHECKSUM};

/// Drain `batch` simulating partial writes: each round collects the
/// unwritten slices (capped at `cap`), "writes" an arbitrary prefix of
/// them, and advances. Returns the bytes that hit the wire, in order.
fn drain_with_partial_writes(batch: &mut WriteBatch, writes: &[(usize, usize)]) -> Vec<u8> {
    let mut wire = Vec::new();
    let mut writes = writes.iter().cycle();
    while !batch.is_empty() {
        // Never let a pathological (0-byte) plan stall the drain.
        let &(cap, take) = writes.next().expect("cycled");
        let cap = cap % 7 + 1;
        let n = {
            let mut slices = Vec::new();
            let avail = batch.unwritten_slices(&mut slices, cap);
            assert!(avail > 0, "non-empty batch must expose bytes");
            let n = (take % avail) + 1;
            let mut left = n;
            for s in &slices {
                if left == 0 {
                    break;
                }
                let m = left.min(s.len());
                wire.extend_from_slice(&s[..m]);
                left -= m;
            }
            n
        };
        batch.advance(n);
    }
    wire
}

fn reassemble(wire: &[u8]) -> Vec<(u8, Vec<u8>)> {
    let mut a = StreamAssembler::new();
    a.feed(wire);
    let mut out = Vec::new();
    while let Some(msg) = a.next_msg().expect("valid stream") {
        out.push(msg);
    }
    assert_eq!(a.pending_bytes(), 0, "no residue after a full drain");
    out
}

fn arb_msgs() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec(
        (
            0u8..msg_kind::MAX + 1,
            proptest::collection::vec(any::<u8>(), 0..200),
        ),
        1..10,
    )
}

proptest! {
    /// Frames split across arbitrary write boundaries arrive
    /// byte-identical: any partial-write schedule reassembles to the
    /// pushed messages.
    #[test]
    fn arbitrary_write_splits_reassemble_identically(
        msgs in arb_msgs(),
        writes in proptest::collection::vec((any::<usize>(), any::<usize>()), 1..32),
    ) {
        let mut batch = WriteBatch::new();
        for (kind, body) in &msgs {
            batch.push(*kind, body.clone());
        }
        let total = batch.remaining_bytes();
        let wire = drain_with_partial_writes(&mut batch, &writes);
        prop_assert_eq!(wire.len(), total);
        prop_assert_eq!(reassemble(&wire), msgs);
    }

    /// Checksummed v2 frames survive any write chunking: the records
    /// decode identically to the pre-write frame (the checksum trailer
    /// would catch any byte the carry-over logic dropped or reordered).
    #[test]
    fn split_writes_keep_checksummed_frames_decodable(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..100),
            0..12,
        ),
        writes in proptest::collection::vec((any::<usize>(), any::<usize>()), 1..24),
    ) {
        let mut f = FrameBuf::with_version(FRAME_VERSION_CHECKSUM);
        for r in &records {
            f.push_record(r);
        }
        let frame_bytes = f.take();
        let mut batch = WriteBatch::new();
        batch.push(msg_kind::FRAME, frame_bytes.clone());
        let wire = drain_with_partial_writes(&mut batch, &writes);
        let msgs = reassemble(&wire);
        prop_assert_eq!(msgs.len(), 1);
        let (kind, body) = &msgs[0];
        prop_assert_eq!(*kind, msg_kind::FRAME);
        prop_assert_eq!(body, &frame_bytes);
        let decoded: Vec<Vec<u8>> = FrameView::parse(body)
            .expect("reassembled frame parses")
            .records()
            .map(|r| r.expect("record checksums clean").to_vec())
            .collect();
        prop_assert_eq!(decoded, records);
    }

    /// A rewind (reconnect re-send) at an arbitrary partial-write point
    /// still yields a stream whose *tail* from the front message on is
    /// intact: the fresh connection sees complete messages only.
    #[test]
    fn rewind_at_any_point_restarts_on_a_message_boundary(
        msgs in arb_msgs(),
        cut in any::<usize>(),
    ) {
        let mut batch = WriteBatch::new();
        for (kind, body) in &msgs {
            batch.push(*kind, body.clone());
        }
        let total = batch.remaining_bytes();
        batch.advance(cut % (total + 1));
        let survivors = batch.msg_count();
        batch.rewind();
        let mut wire = Vec::new();
        while !batch.is_empty() {
            let n = {
                let mut slices = Vec::new();
                let n = batch.unwritten_slices(&mut slices, 4);
                for s in &slices {
                    wire.extend_from_slice(s);
                }
                n
            };
            batch.advance(n);
        }
        let got = reassemble(&wire);
        prop_assert_eq!(got.len(), survivors);
        prop_assert_eq!(got, msgs[msgs.len() - survivors..].to_vec());
    }
}
