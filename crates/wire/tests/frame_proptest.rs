//! Property tests for the multi-parcel frame format: arbitrary record
//! sets round-trip through `FrameBuf` encode → `FrameView` decode,
//! covering empty batches, single records, and frames at the size caps
//! the transport uses.

use proptest::prelude::*;
use px_wire::{FrameBuf, FrameView, FRAME_HEADER_LEN, RECORD_HEADER_LEN};

fn roundtrip(records: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut f = FrameBuf::new();
    for r in records {
        f.push_record(r);
    }
    assert_eq!(f.record_count() as usize, records.len());
    let expected_len = FRAME_HEADER_LEN
        + records
            .iter()
            .map(|r| RECORD_HEADER_LEN + r.len())
            .sum::<usize>();
    assert_eq!(f.len(), expected_len, "frame size must be exact");
    let bytes = f.take();
    let view = FrameView::parse(&bytes).expect("frame parses");
    assert_eq!(view.record_count() as usize, records.len());
    view.records()
        .map(|r| r.expect("record ok").to_vec())
        .collect()
}

proptest! {
    #[test]
    fn arbitrary_batches_roundtrip(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            0..40,
        ),
    ) {
        let back = roundtrip(&records);
        prop_assert_eq!(back, records);
    }

    #[test]
    fn single_record_roundtrips(record in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let back = roundtrip(std::slice::from_ref(&record));
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &record);
    }

    #[test]
    fn encode_in_place_equals_copy_in(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..16),
    ) {
        // push_record (copy) and push_record_with (encode in place) must
        // produce byte-identical frames.
        let mut by_copy = FrameBuf::new();
        let mut in_place = FrameBuf::new();
        for r in &records {
            by_copy.push_record(r);
            let n = in_place.push_record_with(|w| w.put_bytes(r));
            prop_assert_eq!(n, r.len());
        }
        prop_assert_eq!(by_copy.as_bytes(), in_place.as_bytes());
    }

    #[test]
    fn truncation_never_yields_phantom_records(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..8),
        cut in 1usize..16,
    ) {
        let mut f = FrameBuf::new();
        for r in &records {
            f.push_record(r);
        }
        let bytes = f.take();
        if bytes.len() <= cut + FRAME_HEADER_LEN {
            return;
        }
        let cut_bytes = &bytes[..bytes.len() - cut];
        // Either the header rejects outright, or iteration ends in an
        // error item — never in a full set of intact-looking records.
        if let Ok(view) = FrameView::parse(cut_bytes) {
            let items: Vec<_> = view.records().collect();
            prop_assert!(
                items.iter().any(|r| r.is_err()),
                "truncated frame decoded cleanly"
            );
        }
    }
}

#[test]
fn empty_batch_roundtrips() {
    assert_eq!(roundtrip(&[]), Vec::<Vec<u8>>::new());
}

#[test]
fn max_size_frame_roundtrips() {
    // A frame at the transport's default 32 KiB byte cap.
    let record = vec![0xa5u8; 1024];
    let records: Vec<Vec<u8>> = (0..32).map(|_| record.clone()).collect();
    let back = roundtrip(&records);
    assert_eq!(back.len(), 32);
    assert!(back.iter().all(|r| r == &record));
}
