//! Property tests for the trace-id wire extension: parcel-shaped records
//! carrying the `parcel_flags::HAS_TRACE` extension must survive frame
//! batching and arbitrary stream splits bit-identical — the trace id a
//! sender stamps is exactly the id the receiver peeks, and records
//! without the flag never grow one.
//!
//! The byte layout mirrored here is px-core's parcel header (the wire
//! crate deliberately doesn't know it): dest u64 @0, action u64 @8,
//! src u16 @16, hops u8 @18, flags u8 @19, then the optional pid u64
//! (`HAS_PID`) and optional trace u64 (`HAS_TRACE`), in that order.

use proptest::prelude::*;
use px_wire::stream::{encode_msg_header, msg_kind, StreamAssembler};
use px_wire::{parcel_flags, FrameBuf, FrameView};

const FLAGS_AT: usize = 19;
const EXT_AT: usize = 20;

/// A synthetic parcel record for the wire: fixed-size header, optional
/// pid/trace extensions, arbitrary trailing bytes standing in for the
/// continuation and payload.
#[derive(Debug, Clone)]
struct FakeParcel {
    dest: u64,
    pid: Option<u64>,
    trace: Option<u64>,
    tail: Vec<u8>,
}

impl FakeParcel {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(EXT_AT + 16 + self.tail.len());
        b.extend_from_slice(&self.dest.to_le_bytes());
        b.extend_from_slice(&0xfeed_face_dead_beefu64.to_le_bytes()); // action
        b.extend_from_slice(&7u16.to_le_bytes()); // src
        b.push(3); // hops
        let mut flags = 0u8;
        if self.pid.is_some() {
            flags |= parcel_flags::HAS_PID;
        }
        if self.trace.is_some() {
            flags |= parcel_flags::HAS_TRACE;
        }
        b.push(flags);
        assert_eq!(b.len(), EXT_AT);
        if let Some(pid) = self.pid {
            b.extend_from_slice(&pid.to_le_bytes());
        }
        if let Some(t) = self.trace {
            b.extend_from_slice(&t.to_le_bytes());
        }
        b.extend_from_slice(&self.tail);
        b
    }
}

/// Test-local mirror of `Parcel::peek_trace`: read the trace id (if any)
/// straight from encoded bytes without decoding the parcel.
fn peek_trace(bytes: &[u8]) -> Option<u64> {
    let flags = *bytes.get(FLAGS_AT)?;
    if flags & parcel_flags::HAS_TRACE == 0 {
        return None;
    }
    let at = if flags & parcel_flags::HAS_PID != 0 {
        EXT_AT + 8
    } else {
        EXT_AT
    };
    let raw = bytes.get(at..at + 8)?;
    Some(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
}

fn arb_parcel() -> impl Strategy<Value = FakeParcel> {
    (
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        proptest::option::of(any::<u64>()),
        proptest::collection::vec(any::<u8>(), 0..120),
    )
        .prop_map(|(dest, pid, trace, tail)| FakeParcel {
            dest,
            pid,
            trace,
            tail,
        })
}

/// Feed `bytes` to a [`StreamAssembler`] split at `cuts` and collect the
/// reassembled messages.
fn reassemble(bytes: &[u8], cuts: &[usize]) -> Vec<(u8, Vec<u8>)> {
    let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries.push(bytes.len());
    let mut a = StreamAssembler::new();
    let mut out = Vec::new();
    let mut start = 0;
    for end in boundaries {
        if end < start {
            continue;
        }
        a.feed(&bytes[start..end]);
        while let Some(msg) = a.next_msg().expect("valid stream never errors") {
            out.push(msg);
        }
        start = end;
    }
    out
}

proptest! {
    /// Trace ids survive frame batching plus arbitrary stream splits:
    /// the receiver peeks exactly the ids the sender stamped, record for
    /// record, and untraced records stay untraced.
    #[test]
    fn trace_ids_survive_batching_and_splits(
        parcels in proptest::collection::vec(arb_parcel(), 1..24),
        cuts in proptest::collection::vec(any::<usize>(), 0..32),
    ) {
        let mut f = FrameBuf::new();
        for p in &parcels {
            f.push_record(&p.encode());
        }
        let frame = f.take();
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_msg_header(msg_kind::FRAME, frame.len() as u32));
        stream.extend_from_slice(&frame);

        let msgs = reassemble(&stream, &cuts);
        prop_assert_eq!(msgs.len(), 1);
        let (kind, body) = &msgs[0];
        prop_assert_eq!(*kind, msg_kind::FRAME);
        let view = FrameView::parse(body).expect("frame parses");
        prop_assert_eq!(view.record_count() as usize, parcels.len());
        for (rec, p) in view.records().zip(&parcels) {
            let rec = rec.expect("record ok");
            prop_assert_eq!(peek_trace(rec), p.trace, "trace id must ride bit-identical");
            prop_assert_eq!(rec, p.encode().as_slice());
        }
    }

    /// Unframed parcel messages (the unbatched fast path) carry the
    /// trace id through arbitrary splits too.
    #[test]
    fn unbatched_parcels_keep_trace_ids(
        p in arb_parcel(),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let body = p.encode();
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_msg_header(msg_kind::PARCEL, body.len() as u32));
        stream.extend_from_slice(&body);
        let msgs = reassemble(&stream, &cuts);
        prop_assert_eq!(msgs.len(), 1);
        prop_assert_eq!(peek_trace(&msgs[0].1), p.trace);
        prop_assert_eq!(&msgs[0].1, &body);
    }

    /// The flags byte alone decides presence: flipping `HAS_TRACE` off a
    /// traced record makes the peek miss, so no stray bytes are ever
    /// misread as a trace id.
    #[test]
    fn peek_is_gated_on_the_flag(p in arb_parcel()) {
        let mut bytes = p.encode();
        bytes[FLAGS_AT] &= !parcel_flags::HAS_TRACE;
        prop_assert_eq!(peek_trace(&bytes), None);
    }
}
