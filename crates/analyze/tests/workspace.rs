//! Tier-1 gate: the real workspace has zero findings, and every
//! suppression in it obeys the line-level-only policy.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    // crates/analyze/ -> workspace root.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    px_analyze::find_workspace_root(here).expect("workspace root above crates/analyze")
}

#[test]
fn workspace_has_zero_findings() {
    let findings = px_analyze::analyze_workspace(&workspace_root()).expect("scan");
    assert!(
        findings.is_empty(),
        "px-analyze found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn scan_covers_the_product_crates() {
    // The zero-findings gate is only meaningful if the scan actually sees
    // the code it guards: the unsafe boundary (px-poll), the scheduler,
    // and the transports must all be in scope, and the vendored tree must
    // not be.
    let root = workspace_root();
    for must_exist in [
        "crates/poll/src/lib.rs",
        "crates/core/src/sched.rs",
        "crates/core/src/net/tcp.rs",
        "crates/core/src/net/inproc.rs",
        "crates/core/src/trace.rs",
        "crates/core/src/error.rs",
        "crates/core/src/stats.rs",
        "crates/core/src/metrics.rs",
        "crates/bench/src/metrics_report.rs",
        "crates/wire/src/lib.rs",
    ] {
        assert!(
            root.join(must_exist).is_file(),
            "{must_exist} moved — update px-analyze"
        );
    }
    assert!(
        root.join("vendor").is_dir(),
        "vendor/ moved — the exclusion below is stale"
    );
}

#[test]
fn every_allow_is_line_level_and_justified() {
    // The policy is enforced three ways: the parser only *has* a
    // line-level syntax, the allow-syntax rule flags malformed or
    // justification-free attempts, and this test pins the current
    // suppression inventory so a PR adding one shows up in review.
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "src", "examples"] {
        collect(&root.join(dir), &mut files);
    }
    let files: Vec<(String, String)> = files
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(&root)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/");
            (rel, std::fs::read_to_string(&p).unwrap())
        })
        .collect();
    let allows = px_analyze::collect_allows(&files);
    for (file, a) in &allows {
        assert!(
            !a.why.trim().is_empty(),
            "{file}:{}: allow({}) without justification",
            a.line,
            a.rule
        );
    }
    // Inventory ceiling: suppressions are for documented, intentional
    // drops — if this number grows, the new allow's justification gets
    // reviewed, not waved through.
    assert!(
        allows.len() <= 10,
        "suppression inventory grew to {}: review the new allows\n{:?}",
        allows.len(),
        allows
            .iter()
            .map(|(f, a)| format!("{f}:{}: allow({}): {}", a.line, a.rule, a.why))
            .collect::<Vec<_>>()
    );
}

fn collect(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}
