//! px-analyze: a workspace invariant checker for the parallex runtime.
//!
//! The runtime's correctness rests on conventions no compiler checks: a
//! global mutex acquisition order, the transport contract's "no silent
//! loss" (a dying [`Parcel`] must route through `kill_parcel`), documented
//! `unsafe` in the one crate allowed to have any, justified
//! `Ordering::Relaxed`, and wire-code/stats-counter completeness. This
//! crate lexes the workspace sources (hand-rolled lexer — the build is
//! offline, there is no `syn`) and enforces those conventions as six
//! rules:
//!
//! | rule id          | invariant |
//! |------------------|-----------|
//! | `lock-order`     | the global lock-order graph is acyclic |
//! | `unsafe-hygiene` | every `unsafe` is preceded by `// SAFETY:` |
//! | `atomic-ordering`| `Relaxed` only on counters or with justification; seqlock pairing structurally intact |
//! | `no-silent-loss` | Parcel bindings in scheduler/transport files reach a kill/delivery sink |
//! | `wire-stats`     | wire codes unique & exhaustively matched; stats fields in every aggregation path |
//! | `guard-unwrap`   | no `.lock().unwrap()`-style guard unwraps in non-test code |
//!
//! Findings print as `file:line: rule-id: message`. Suppression is
//! **line-level only** — `// px-analyze: allow(rule-id): <why>` on the
//! finding's line or the line above — and the justification text is
//! mandatory (enforced by the `allow-syntax` meta-rule). There is
//! deliberately no file- or crate-wide suppression syntax.
//!
//! Used two ways: `cargo test -p px-analyze` (tier-1; asserts zero
//! findings over the workspace) and the `px-analyze` binary for local
//! runs and CI.
//!
//! [`Parcel`]: ../px_core/parcel/struct.Parcel.html

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod segment;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{lex, Token};
use segment::FnItem;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (`/`-separated on every platform).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (e.g. `lock-order`).
    pub rule: &'static str,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Every rule id the suppression syntax accepts.
pub const RULE_IDS: &[&str] = &[
    "lock-order",
    "unsafe-hygiene",
    "atomic-ordering",
    "no-silent-loss",
    "wire-stats",
    "guard-unwrap",
    "allow-syntax",
];

/// A parsed line-level suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// Line of the comment itself.
    pub line: u32,
    /// True when the comment is the first thing on its line — only then
    /// does the allow extend to the line below (a trailing allow covers
    /// its own line, nothing else).
    pub own_line: bool,
    /// The mandatory justification text.
    pub why: String,
}

/// One lexed source file plus derived structure, shared by all rules.
pub struct FileCtx {
    /// Workspace-relative path.
    pub rel: String,
    /// Token stream (comments included).
    pub toks: Vec<Token>,
    /// Function items.
    pub fns: Vec<FnItem>,
    /// `#[cfg(test)] mod` body token ranges.
    pub test_ranges: Vec<(usize, usize)>,
    /// Parsed line-level allows.
    pub allows: Vec<Allow>,
}

impl FileCtx {
    /// Build the per-file context from source text.
    pub fn new(rel: &str, src: &str) -> FileCtx {
        let toks = lex(src);
        let fns = segment::functions(&toks);
        let test_ranges = segment::cfg_test_ranges(&toks);
        let allows = parse_allows(&toks);
        FileCtx {
            rel: rel.to_string(),
            toks,
            fns,
            test_ranges,
            allows,
        }
    }

    /// True when token index `i` falls inside a `#[cfg(test)]` module.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|r| r.0 <= i && i <= r.1)
    }

    /// True when `rule` is suppressed at `line` (allow on the same line,
    /// or an own-line allow on the line immediately above).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || (a.own_line && a.line + 1 == line)))
    }
}

/// True for rustdoc comments (`///`, `//!`, `/**`, `/*!`). Suppressions
/// are plain `//` comments only; docs may *show* the syntax as an example
/// without it becoming a live allow.
pub(crate) fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Parse `// px-analyze: allow(rule-id): why` comments. Malformed
/// attempts are left for the `allow-syntax` rule to report.
fn parse_allows(toks: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() || is_doc_comment(&t.text) {
            continue;
        }
        if let Some((rule, why)) = parse_allow_comment(&t.text) {
            if RULE_IDS.contains(&rule.as_str()) && !why.is_empty() {
                let own_line = !toks[..i].iter().any(|p| p.line == t.line);
                out.push(Allow {
                    rule,
                    line: t.line,
                    own_line,
                    why,
                });
            }
        }
    }
    out
}

/// Split an allow comment into `(rule, justification)`; `None` when the
/// comment does not mention px-analyze at all.
pub(crate) fn parse_allow_comment(text: &str) -> Option<(String, String)> {
    let at = text.find("px-analyze:")?;
    let rest = text[at + "px-analyze:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let why = tail.strip_prefix(':').map(|w| w.trim().to_string())?;
    Some((rule, why))
}

/// Analyze a set of `(workspace-relative path, source)` pairs. This is
/// the whole pipeline minus the filesystem: fixture tests feed synthetic
/// files through it, [`analyze_workspace`] feeds the real tree.
pub fn analyze_files(files: &[(String, String)]) -> Vec<Finding> {
    let ctxs: Vec<FileCtx> = files
        .iter()
        .map(|(rel, src)| FileCtx::new(rel, src))
        .collect();
    let mut findings = Vec::new();
    for ctx in &ctxs {
        rules::unsafe_hygiene::check(ctx, &mut findings);
        rules::atomic_ordering::check(ctx, &ctxs, &mut findings);
        rules::silent_loss::check(ctx, &mut findings);
        rules::guard_unwrap::check(ctx, &mut findings);
        rules::allow_syntax::check(ctx, &mut findings);
    }
    rules::lock_order::check(&ctxs, &mut findings);
    rules::wire_stats::check(&ctxs, &mut findings);
    // Apply line-level allows.
    let by_file: BTreeMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.rel.as_str(), c)).collect();
    findings.retain(|f| {
        by_file
            .get(f.file.as_str())
            .is_none_or(|c| !c.allowed(f.rule, f.line))
    });
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings.dedup();
    findings
}

/// Directories under the workspace root whose `.rs` files are analyzed.
/// Vendored stand-ins are excluded by construction (they reproduce
/// third-party crates and are pinned by their own tests); everything the
/// project authored — `px-poll`'s unsafe included — is in scope.
const SCAN_DIRS: &[&str] = &["crates", "src", "examples"];

/// Skip list *within* the scanned tree.
const SKIP_COMPONENTS: &[&str] = &["target", "vendor", "fixtures"];

/// Recursively collect workspace sources.
fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let base = root.join(dir);
        if base.is_dir() {
            walk(&base, root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_COMPONENTS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let src = std::fs::read_to_string(&path)?;
            out.push((rel, src));
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// Run every rule over the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = collect_sources(root)?;
    Ok(analyze_files(&files))
}

/// The allows present across `files` (for policy tests: every allow is
/// line-level by construction, and each must carry a justification).
pub fn collect_allows(files: &[(String, String)]) -> Vec<(String, Allow)> {
    files
        .iter()
        .flat_map(|(rel, src)| {
            parse_allows(&lex(src))
                .into_iter()
                .map(move |a| (rel.clone(), a))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_comment_parsing() {
        assert_eq!(
            parse_allow_comment("// px-analyze: allow(no-silent-loss): noop parcels carry nothing"),
            Some(("no-silent-loss".into(), "noop parcels carry nothing".into()))
        );
        // Justification is mandatory.
        assert_eq!(
            parse_allow_comment("// px-analyze: allow(lock-order)"),
            None
        );
        assert_eq!(parse_allow_comment("// plain comment"), None);
    }

    #[test]
    fn allows_apply_to_same_and_next_line() {
        let src = "\
// px-analyze: allow(guard-unwrap): demo
let a = m.lock().unwrap();
let b = m.lock().unwrap(); // px-analyze: allow(guard-unwrap): demo
let c = m.lock().unwrap();
";
        let ctx = FileCtx::new("x.rs", src);
        assert!(ctx.allowed("guard-unwrap", 2));
        assert!(ctx.allowed("guard-unwrap", 3));
        assert!(!ctx.allowed("guard-unwrap", 4));
        assert!(!ctx.allowed("lock-order", 2));
    }

    #[test]
    fn workspace_root_discovery() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates").is_dir());
    }
}
