//! A hand-rolled Rust lexer, sufficient for rule checking.
//!
//! The container has no crates.io access, so there is no `syn`/`proc-macro2`
//! to lean on. This lexer handles the constructs that break naive regex
//! scanning over Rust source:
//!
//! * raw strings with arbitrary hash fences (`r#"..."#`, `br##"..."##`),
//! * nested block comments (`/* /* */ */`),
//! * lifetimes vs char literals (`'a` vs `'a'` vs `'\n'`),
//! * raw identifiers (`r#match`, normalized to `match`),
//! * string escapes (`"\""`, `'\''`, `"\u{1F600}"`).
//!
//! Comments are kept as tokens (several rules key off `// SAFETY:` and
//! `// px-analyze: allow(...)` comments) and every token carries the
//! 1-based line it starts on. Whitespace is dropped; multi-character
//! operators are emitted as single-character [`TokKind::Punct`] runs
//! (`::` is `:`,`:`), which keeps the lexer trivial and the rule matchers
//! explicit.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`r#ident` is normalized to `ident`).
    Ident,
    /// A lifetime such as `'a` or `'_` (text keeps the leading quote).
    Lifetime,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Cooked string literal, including `b"..."` and `c"..."`.
    Str,
    /// Raw string literal (`r"..."`, `br#"..."#`).
    RawStr,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// `// ...` comment (text includes the slashes, excludes the newline).
    LineComment,
    /// `/* ... */` comment, nesting handled.
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Source text (normalized for raw identifiers).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True for comment tokens (skipped by most structural matchers).
    #[inline]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True when this is an identifier with exactly this text.
    #[inline]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is a punctuation token with exactly this character.
    #[inline]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

#[inline]
fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

#[inline]
fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens. Never fails: malformed source degrades to
/// punctuation tokens rather than panicking, because the analyzer must
/// not crash on the code it is criticizing.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        c: src.chars().collect(),
        i: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer {
    c: Vec<char>,
    i: usize,
    line: u32,
    toks: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.c.len() {
            let start = self.i;
            let line = self.line;
            let ch = self.c[self.i];
            match ch {
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_whitespace() => self.i += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.cooked_string(start, line),
                '\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(line),
                c if is_ident_start(c) => self.ident_or_prefixed(line),
                c => {
                    self.i += 1;
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.c.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Token { kind, text, line });
    }

    fn text_from(&self, start: usize) -> String {
        self.c[start..self.i].iter().collect()
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.c.len() && self.c[self.i] != '\n' {
            self.i += 1;
        }
        let text = self.text_from(start);
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.i;
        self.i += 2;
        let mut depth = 1u32;
        while self.i < self.c.len() && depth > 0 {
            if self.c[self.i] == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.i += 2;
            } else if self.c[self.i] == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.i += 2;
            } else {
                if self.c[self.i] == '\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        let text = self.text_from(start);
        self.push(TokKind::BlockComment, text, line);
    }

    /// Cooked string body starting at the opening `"` (prefix, if any,
    /// already consumed; `start` points at the prefix for the token text).
    fn cooked_string(&mut self, start: usize, line: u32) {
        debug_assert_eq!(self.c[self.i], '"');
        self.i += 1;
        while self.i < self.c.len() {
            match self.c[self.i] {
                '\\' => {
                    // Escape: skip the backslash and the escaped char.
                    // `\u{...}` needs no special case — the braces and hex
                    // digits that follow are consumed by the normal loop.
                    if self.peek(1) == Some('\n') {
                        self.line += 1;
                    }
                    self.i = (self.i + 2).min(self.c.len());
                }
                '"' => {
                    self.i += 1;
                    let text = self.text_from(start);
                    self.push(TokKind::Str, text, line);
                    return;
                }
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        // Unterminated: emit what we have.
        let text = self.text_from(start);
        self.push(TokKind::Str, text, line);
    }

    /// Raw string body: `self.i` points at the first `#` or the `"`.
    fn raw_string(&mut self, start: usize, line: u32) {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        self.i += hashes;
        debug_assert_eq!(self.c.get(self.i), Some(&'"'));
        self.i += 1;
        while self.i < self.c.len() {
            if self.c[self.i] == '"' {
                let mut k = 0usize;
                while k < hashes && self.peek(1 + k) == Some('#') {
                    k += 1;
                }
                if k == hashes {
                    self.i += 1 + hashes;
                    let text = self.text_from(start);
                    self.push(TokKind::RawStr, text, line);
                    return;
                }
            }
            if self.c[self.i] == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        let text = self.text_from(start);
        self.push(TokKind::RawStr, text, line);
    }

    /// `'` starts a lifetime (`'a`), a char literal (`'a'`, `'\n'`), or a
    /// labelled loop label (`'outer:` — lexes as a lifetime, fine).
    fn quote(&mut self, line: u32) {
        let start = self.i;
        self.i += 1; // the quote
        match self.peek(0) {
            Some('\\') => {
                // Char literal with an escape: skip `\x`, then scan to the
                // closing quote (covers `'\u{1F600}'`).
                self.i = (self.i + 2).min(self.c.len());
                while self.i < self.c.len() && self.c[self.i] != '\'' {
                    self.i += 1;
                }
                self.i = (self.i + 1).min(self.c.len());
                let text = self.text_from(start);
                self.push(TokKind::Char, text, line);
            }
            Some(c) if is_ident_start(c) => {
                // Ident chars follow: `'a'` is a char literal, `'a` (no
                // closing quote) is a lifetime. `'static`, `'_` lifetimes;
                // `'_'`, `'é'` char literals.
                let mut j = self.i;
                while j < self.c.len() && is_ident_continue(self.c[j]) {
                    j += 1;
                }
                if self.c.get(j) == Some(&'\'') {
                    self.i = j + 1;
                    let text = self.text_from(start);
                    self.push(TokKind::Char, text, line);
                } else {
                    self.i = j;
                    let text = self.text_from(start);
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(_) => {
                // Non-ident char literal: `'1'`, `' '`, `'+'`.
                self.i += 1;
                if self.peek(0) == Some('\'') {
                    self.i += 1;
                }
                let text = self.text_from(start);
                self.push(TokKind::Char, text, line);
            }
            None => self.push(TokKind::Punct, "'".into(), line),
        }
    }

    fn number(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.c.len() && (is_ident_continue(self.c[self.i])) {
            self.i += 1;
        }
        // Fractional part: only when a digit follows the dot, so `0..6`
        // stays three tokens and `x.1` tuple access is untouched.
        if self.c.get(self.i) == Some(&'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            while self.i < self.c.len() && is_ident_continue(self.c[self.i]) {
                self.i += 1;
            }
        }
        // Exponent sign: `1e-5` — the `e` was consumed above.
        if matches!(self.c.get(self.i), Some('+') | Some('-'))
            && self
                .c
                .get(self.i.wrapping_sub(1))
                .is_some_and(|c| *c == 'e' || *c == 'E')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.i += 1;
            while self.i < self.c.len() && is_ident_continue(self.c[self.i]) {
                self.i += 1;
            }
        }
        let text = self.text_from(start);
        self.push(TokKind::Num, text, line);
    }

    /// Identifier, or a string prefixed with `r`/`b`/`c`/`br`/`cr`, or a
    /// raw identifier `r#ident`.
    fn ident_or_prefixed(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.c.len() && is_ident_continue(self.c[self.i]) {
            self.i += 1;
        }
        let word = self.text_from(start);
        match (word.as_str(), self.peek(0)) {
            ("r" | "br" | "cr", Some('"')) => self.raw_string(start, line),
            ("r" | "br" | "cr", Some('#')) => {
                // `r#"..."#` raw string, or `r#ident` raw identifier.
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    self.raw_string(start, line);
                } else if word == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                    self.i += 1; // the hash
                    let id_start = self.i;
                    while self.i < self.c.len() && is_ident_continue(self.c[self.i]) {
                        self.i += 1;
                    }
                    // Normalized: `r#match` lexes as the ident `match`.
                    let text = self.text_from(id_start);
                    self.push(TokKind::Ident, text, line);
                } else {
                    self.push(TokKind::Ident, word, line);
                }
            }
            ("b" | "c", Some('"')) => self.cooked_string(start, line),
            ("b", Some('\'')) => {
                self.quote(line);
                // Re-tag with the `b` prefix included.
                if let Some(last) = self.toks.last_mut() {
                    last.kind = TokKind::Char;
                    last.text = self.c[start..self.i].iter().collect();
                    last.line = line;
                }
            }
            _ => self.push(TokKind::Ident, word, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        let toks = kinds(r####"let s = r#"quote " inside"# ;"####);
        assert_eq!(toks[3].0, TokKind::RawStr);
        assert_eq!(toks[3].1, r###"r#"quote " inside"#"###);
        assert!(toks[4].1 == ";");
        // Double fence with an embedded single fence.
        let toks = kinds(r#####"r##"a "# b"##"#####);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokKind::RawStr);
        // Byte raw string.
        let toks = kinds(r####"br#"x"#"####);
        assert_eq!(toks[0].0, TokKind::RawStr);
    }

    #[test]
    fn raw_string_hides_code_from_rules() {
        // The string contains things every rule matches on; none may
        // surface as real tokens.
        let src = r###"let s = r#"unsafe { x.lock(); Ordering::Relaxed }"#;"###;
        let toks = lex(src);
        assert!(toks.iter().all(|t| !t.is_ident("unsafe")));
        assert!(toks.iter().all(|t| !t.is_ident("lock")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::RawStr).count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert!(toks[1].1.ends_with("still outer */"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let d = '\\n'; let e = '_'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Lifetime)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Char)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(chars, ["'a'", "'\\n'", "'_'"]);
        // `'static` and `'_` are lifetimes.
        let toks = kinds("&'static str; &'_ T");
        assert_eq!(toks.iter().filter(|t| t.0 == TokKind::Lifetime).count(), 2);
    }

    #[test]
    fn raw_identifiers_normalize() {
        let toks = kinds("let r#match = r#fn + other;");
        assert!(toks.iter().any(|t| t.0 == TokKind::Ident && t.1 == "match"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Ident && t.1 == "fn"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Ident && t.1 == "other"));
        // But `r#"..."#` right after is still a raw string.
        let toks = kinds(r####"r#fn r#"s"#"####);
        assert_eq!(toks[0].0, TokKind::Ident);
        assert_eq!(toks[1].0, TokKind::RawStr);
    }

    #[test]
    fn string_escapes_do_not_end_strings() {
        let toks = kinds(r#"let s = "a \" b \\" ; let t = "\u{1F600}!";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].1, r#""a \" b \\""#);
        assert_eq!(strs[1].1, r#""\u{1F600}!""#);
    }

    #[test]
    fn line_numbers_and_comments() {
        let src = "line1\n// c2\nline3 /* spans\nlines */ after\n";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[3].kind, TokKind::BlockComment);
        assert_eq!(toks[3].line, 3);
        // `after` lands on line 4: the block comment advanced the counter.
        assert_eq!(toks[4].line, 4);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("0..6");
        assert_eq!(toks.len(), 4); // 0 . . 6
        assert_eq!(toks[0].0, TokKind::Num);
        let toks = kinds("1.5e-3 0xff_u64 1 << 0");
        assert_eq!(toks[0].1, "1.5e-3");
        assert_eq!(toks[1].1, "0xff_u64");
    }

    #[test]
    fn byte_char_literal() {
        let toks = kinds(r"b'\n' b'x'");
        assert_eq!(toks.len(), 2);
        assert!(toks.iter().all(|t| t.0 == TokKind::Char));
    }
}
