//! Brace-matched item segmentation over the token stream: functions,
//! `impl` blocks, `#[cfg(test)]` ranges, and closure bodies, plus the
//! shared token-walking helpers the rules are built from.

use crate::lexer::{TokKind, Token};

/// A function item: its name, signature range, and brace-matched body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (the ident after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index range `[open, close]` of the body braces, inclusive.
    pub body: (usize, usize),
    /// True when the function sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// An `impl` block: `impl Type { .. }` or `impl Trait for Type { .. }`.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// The implemented-on type name (last path segment, generics dropped).
    pub type_name: String,
    /// Trait name for `impl Trait for Type` (last path segment).
    pub trait_name: Option<String>,
    /// Token index range `[open, close]` of the body braces, inclusive.
    pub body: (usize, usize),
}

/// Index of the next non-comment token at or after `i`.
pub fn next_sig(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !toks[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Index of the nearest non-comment token at or before `i`.
pub fn prev_sig(toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i as isize;
    while j >= 0 {
        if !toks[j as usize].is_comment() {
            return Some(j as usize);
        }
        j -= 1;
    }
    None
}

/// Token index of the `}` matching the `{` at `open` (or the last token
/// if unbalanced — the analyzer degrades rather than panics).
pub fn matching_brace(toks: &[Token], open: usize) -> usize {
    debug_assert!(toks[open].is_punct('{'));
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Token index of the `)` matching the `(` at `open` (or the last token
/// if unbalanced).
pub fn matching_close_paren(toks: &[Token], open: usize) -> usize {
    debug_assert!(toks[open].is_punct('('));
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Given the index of a `)` token, return the index of its matching `(`.
pub fn matching_open_paren(toks: &[Token], close: usize) -> usize {
    debug_assert!(toks[close].is_punct(')'));
    let mut depth = 0i64;
    let mut i = close as isize;
    while i >= 0 {
        let t = &toks[i as usize];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return i as usize;
            }
        }
        i -= 1;
    }
    0
}

/// The receiver name of a method call: for the method ident at `m_idx`
/// (with `toks[m_idx-1] == '.'`), the last *named* segment of the
/// receiver chain:
///
/// * `self.queue.lock()` → `queue`
/// * `ports.port(dest, staged).lock()` → `port` (the producing call)
/// * `self.slots[i].lock()` → `slots`
/// * `STATIC.lock()` → `STATIC`
pub fn receiver_name(toks: &[Token], m_idx: usize) -> Option<String> {
    let dot = prev_sig(toks, m_idx.checked_sub(1)?)?;
    if !toks[dot].is_punct('.') {
        return None;
    }
    let mut j = prev_sig(toks, dot.checked_sub(1)?)?;
    // Skip a trailing index `[...]` or call `(...)` group.
    loop {
        if toks[j].is_punct(']') {
            let mut depth = 0i64;
            let mut k = j as isize;
            while k >= 0 {
                if toks[k as usize].is_punct(']') {
                    depth += 1;
                } else if toks[k as usize].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            j = prev_sig(toks, (k.max(0) as usize).checked_sub(1)?)?;
        } else if toks[j].is_punct(')') {
            let open = matching_open_paren(toks, j);
            j = prev_sig(toks, open.checked_sub(1)?)?;
        } else {
            break;
        }
    }
    if toks[j].kind == TokKind::Ident && toks[j].text != "self" {
        return Some(toks[j].text.clone());
    }
    // `self.lock()` or an expression we cannot name.
    None
}

/// All functions in the token stream. Scans linearly for `fn` keywords;
/// trait-method declarations without bodies are skipped. `fn` pointer
/// types (`fn(..) -> T`) are skipped because no name ident follows.
pub fn functions(toks: &[Token]) -> Vec<FnItem> {
    let test_ranges = cfg_test_ranges(toks);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            let fn_idx = i;
            let Some(name_idx) = next_sig(toks, i + 1) else {
                break;
            };
            if toks[name_idx].kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let name = toks[name_idx].text.clone();
            // Find the body `{` at bracket/paren depth 0, or a `;`
            // (bodyless declaration). Generic angle brackets need no
            // tracking: `{` cannot appear inside a signature's generics
            // or argument types in this codebase's (and most) Rust.
            let mut depth = 0i64;
            let mut j = name_idx + 1;
            let mut body_open = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('{') {
                    body_open = Some(j);
                    break;
                } else if depth == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body_open {
                let close = matching_brace(toks, open);
                out.push(FnItem {
                    name,
                    line: toks[fn_idx].line,
                    fn_idx,
                    body: (open, close),
                    in_test: test_ranges.iter().any(|r| r.0 <= fn_idx && fn_idx <= r.1),
                });
                // Continue scanning *inside* the body too (nested fns).
                i = open + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// All `impl` blocks.
pub fn impls(toks: &[Token]) -> Vec<ImplItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            // Collect path segments up to the body `{`, tracking a `for`.
            let mut j = i + 1;
            let mut angle = 0i64;
            let mut last_ident: Option<String> = None;
            let mut before_for: Option<String> = None;
            let mut open = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                } else if angle == 0 && t.kind == TokKind::Ident && t.text == "for" {
                    before_for = last_ident.take();
                } else if angle == 0 && t.kind == TokKind::Ident && t.text != "where" {
                    last_ident = Some(t.text.clone());
                } else if angle <= 0 && t.is_punct('{') {
                    open = Some(j);
                    break;
                } else if t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let (Some(open), Some(type_name)) = (open, last_ident) {
                let close = matching_brace(toks, open);
                out.push(ImplItem {
                    type_name,
                    trait_name: before_for,
                    body: (open, close),
                });
                i = open + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Token ranges of `#[cfg(test)] mod ... { ... }` bodies.
pub fn cfg_test_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        if toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']')
        {
            // Find the next `mod`'s `{`.
            if let Some(m) = next_sig(toks, i + 7) {
                if toks[m].is_ident("mod") {
                    let mut j = m;
                    while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        j += 1;
                    }
                    if j < toks.len() && toks[j].is_punct('{') {
                        out.push((j, matching_brace(toks, j)));
                        i = j + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Token ranges of closure bodies `|args| { ... }`. Single-expression
/// closures (no braces) are not tracked — a `return` cannot hide in one
/// without braces in practice. The `|` is recognized as a closure head
/// (not bitwise-or) when the preceding significant token cannot end an
/// operand.
pub fn closure_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let opens_closure = if t.is_punct('|') {
            match i.checked_sub(1).and_then(|p| prev_sig(toks, p)) {
                None => true,
                Some(p) => {
                    let pt = &toks[p];
                    pt.is_punct('(')
                        || pt.is_punct(',')
                        || pt.is_punct('=')
                        || pt.is_punct('{')
                        || pt.is_punct(';')
                        || pt.is_punct('>') // `=>` arm
                        || pt.is_ident("move")
                        || pt.is_ident("return")
                }
            }
        } else {
            false
        };
        if opens_closure {
            // Empty params `||` or scan to the closing `|`.
            let params_end = if toks.get(i + 1).is_some_and(|t| t.is_punct('|')) {
                i + 1
            } else {
                let mut j = i + 1;
                let mut depth = 0i64; // parens/brackets inside patterns
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct('|') {
                        break;
                    }
                    j += 1;
                }
                j
            };
            // Skip an optional `-> Type` to the body.
            let mut k = params_end + 1;
            while k < toks.len()
                && !toks[k].is_punct('{')
                && !toks[k].is_punct(';')
                && !toks[k].is_punct(',')
                && !toks[k].is_punct(')')
            {
                k += 1;
            }
            if k < toks.len() && toks[k].is_punct('{') {
                out.push((k, matching_brace(toks, k)));
            }
            i = params_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_bodies() {
        let toks = lex("impl Foo { fn a(&self) -> u32 { 1 } }\n\
             fn b<T: Fn() -> usize>(x: T) { x(); }\n\
             trait T { fn decl(&self); fn with_default(&self) {} }");
        let fns = functions(&toks);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "with_default"]);
        for f in &fns {
            assert!(toks[f.body.0].is_punct('{'));
            assert!(toks[f.body.1].is_punct('}'));
        }
    }

    #[test]
    fn fn_keyword_in_string_is_not_an_item() {
        let toks = lex(r#"fn real() { let s = "fn fake() {"; s.len() }"#);
        let fns = functions(&toks);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
        // The body closes at the real `}`, not inside the string.
        assert_eq!(fns[0].body.1, toks.len() - 1);
    }

    #[test]
    fn cfg_test_marks_functions() {
        let toks = lex("fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { prod(); }\n}");
        let fns = functions(&toks);
        assert!(!fns.iter().find(|f| f.name == "prod").unwrap().in_test);
        assert!(fns.iter().find(|f| f.name == "t").unwrap().in_test);
    }

    #[test]
    fn receiver_names() {
        let toks = lex("self.queue.lock(); ports.port(dest, p.staged).lock(); x[i].read();");
        let mut names = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.is_ident("lock") || t.is_ident("read") {
                names.push(receiver_name(&toks, i));
            }
        }
        assert_eq!(
            names,
            [Some("queue".into()), Some("port".into()), Some("x".into())]
        );
    }

    #[test]
    fn impl_blocks() {
        let toks = lex("impl TraceRing { fn a() {} } impl Drop for Wire { fn drop(&mut self) {} } impl<T: Clone> Holder<T> {}");
        let im = impls(&toks);
        assert_eq!(im.len(), 3);
        assert_eq!(im[0].type_name, "TraceRing");
        assert!(im[0].trait_name.is_none());
        assert_eq!(im[1].type_name, "Wire");
        assert_eq!(im[1].trait_name.as_deref(), Some("Drop"));
        assert_eq!(im[2].type_name, "Holder");
    }

    #[test]
    fn closures() {
        let toks = lex("items.map(|x| { x + 1 }); let f = move |a, b| { a * b }; a | b;");
        let ranges = closure_ranges(&toks);
        assert_eq!(ranges.len(), 2);
        // Bitwise-or `a | b` did not produce a closure.
    }
}
