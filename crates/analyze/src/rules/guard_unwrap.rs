//! `guard-unwrap`: no `.lock().unwrap()` / `.read().unwrap()` /
//! `.write().unwrap()` in non-test code.
//!
//! Why: the workspace standardizes on the (vendored) `parking_lot` lock
//! API, whose guards are infallible — a poisoned-`std`-mutex `.unwrap()`
//! indicates a stray `std::sync` lock slipped in, where a panicking
//! worker would cascade into bare `PoisonError` unwraps on every other
//! thread instead of one loud, attributable failure. The 2025-08 audit of
//! `sched.rs`/`runtime.rs` hot paths (ISSUE 8, satellite 3) found **zero**
//! poison-prone guard unwraps precisely because of that convention; this
//! rule keeps the result true instead of letting it silently rot.
//! (`.expect(...)` counts too: same poison path, nicer message, still the
//! wrong layer to handle it.)

use crate::segment::next_sig;
use crate::{FileCtx, Finding};

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        let is_acquire = t.is_ident("lock") || t.is_ident("read") || t.is_ident("write");
        if !is_acquire || ctx.in_test(i) {
            continue;
        }
        // Shape: `.lock ( )` — empty argument list distinguishes a lock
        // acquisition from `io::Read::read(&mut buf)`.
        let Some(prev) = i
            .checked_sub(1)
            .and_then(|p| crate::segment::prev_sig(toks, p))
        else {
            continue;
        };
        if !toks[prev].is_punct('.') {
            continue;
        }
        let Some(open) = next_sig(toks, i + 1) else {
            continue;
        };
        let Some(close) = next_sig(toks, open + 1) else {
            continue;
        };
        if !(toks[open].is_punct('(') && toks[close].is_punct(')')) {
            continue;
        }
        // Followed by `.unwrap()` or `.expect(`?
        let Some(dot) = next_sig(toks, close + 1) else {
            continue;
        };
        let Some(m) = next_sig(toks, dot + 1) else {
            continue;
        };
        if toks[dot].is_punct('.') && (toks[m].is_ident("unwrap") || toks[m].is_ident("expect")) {
            findings.push(Finding {
                file: ctx.rel.clone(),
                line: toks[m].line,
                rule: "guard-unwrap",
                msg: format!(
                    "`.{}().{}(..)` on a lock guard: use the parking_lot API \
                     (infallible guards) instead of unwrapping poison",
                    t.text, toks[m].text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_files;

    fn run(src: &str) -> usize {
        analyze_files(&[("crates/core/src/x.rs".into(), src.into())])
            .iter()
            .filter(|f| f.rule == "guard-unwrap")
            .count()
    }

    #[test]
    fn std_guard_unwraps_flagged() {
        assert_eq!(run("fn f() { let g = m.lock().unwrap(); }"), 1);
        assert_eq!(run("fn f() { let g = t.read().expect(\"poisoned\"); }"), 1);
        assert_eq!(run("fn f() { let g = t.write().unwrap(); }"), 1);
    }

    #[test]
    fn parking_lot_style_passes() {
        assert_eq!(run("fn f() { let g = m.lock(); g.push(1); }"), 0);
        // io::Read with arguments is not a lock acquisition.
        assert_eq!(run("fn f() { s.read(&mut buf).unwrap(); }"), 0);
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { m.lock().unwrap(); } }";
        assert_eq!(run(src), 0);
    }
}
