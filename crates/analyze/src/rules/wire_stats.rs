//! `wire-stats`: cross-file completeness of the fault wire codes, the
//! parcel flag bits, and the `LocalityStats` counter mirror.
//!
//! Why: these are the places where adding one enum variant or counter
//! requires touching three or four hand-written paths, and forgetting
//! one compiles clean:
//!
//! - **FaultCause wire codes** (`core/src/error.rs`): `code()` must map
//!   every variant to a unique code, `from_code()` must invert it (one
//!   designated fallback variant may ride the `_` arm — that is the
//!   forward-compat path for codes from newer peers), and
//!   `count_death()` (`core/src/stats.rs`) must have a by-cause counter
//!   arm per variant. Miss one and cross-rank faults silently mutate
//!   into `HandlerError`, or a death goes uncounted.
//! - **parcel flag bits** (`wire/src/lib.rs`, `mod parcel_flags`): each
//!   flag must be a distinct single bit and the `KNOWN` mask must OR in
//!   every flag — the decoder rejects unknown bits, so a flag missing
//!   from `KNOWN` makes every parcel carrying it undecodable.
//! - **LocalityStats counters** (`core/src/stats.rs`): the atomic
//!   `LocalityCounters` fields and the plain `LocalityStats` mirror
//!   must list the same names, and `snapshot()`, `delta_from()`, and
//!   `StatsSnapshot::total()` must each touch every field; the struct
//!   must keep `derive(serde::Serialize)` so the px-bench JSON emitter
//!   (serde-driven) reports it without its own field list. A counter
//!   absent from `delta_from` reads as "this interval had none";
//!   absent from `total` it vanishes from every bench artifact.
//! - **Instrument coverage** (`core/src/metrics.rs` and
//!   `bench/src/metrics_report.rs`): every `Instrument` variant must be
//!   rendered by `render_instruments` (the `metrics_text` exposition
//!   page) and carried by `metrics_rows` (the `BENCH_*.json` percentile
//!   rows). Both functions spell out the variants by hand — instead of
//!   looping `Instrument::ALL` — precisely so this check has a subject:
//!   a variant missing from either silently drops the new histogram
//!   from the exposition page or from every bench artifact.

use crate::lexer::{TokKind, Token};
use crate::segment::{matching_brace, next_sig, prev_sig};
use crate::{FileCtx, Finding};
use std::collections::BTreeMap;

pub fn check(ctxs: &[FileCtx], findings: &mut Vec<Finding>) {
    let error_ctx = ctxs.iter().find(|c| c.rel.ends_with("core/src/error.rs"));
    let stats_ctx = ctxs.iter().find(|c| c.rel.ends_with("core/src/stats.rs"));
    let wire_ctx = ctxs.iter().find(|c| c.rel.ends_with("wire/src/lib.rs"));
    let metrics_ctx = ctxs.iter().find(|c| c.rel.ends_with("core/src/metrics.rs"));
    let bench_ctx = ctxs
        .iter()
        .find(|c| c.rel.ends_with("bench/src/metrics_report.rs"));

    // Analyzing the real core crate without its fault/stats/metrics
    // files means the completeness checks would silently vacuously
    // pass — refuse.
    if ctxs.iter().any(|c| c.rel == "crates/core/src/lib.rs") {
        for (present, name) in [
            (error_ctx.is_some(), "error.rs"),
            (stats_ctx.is_some(), "stats.rs"),
            (metrics_ctx.is_some(), "metrics.rs"),
        ] {
            if !present {
                findings.push(Finding {
                    file: "crates/core/src/lib.rs".into(),
                    line: 1,
                    rule: "wire-stats",
                    msg: format!("core/src/{name} missing: completeness checks have no subject"),
                });
            }
        }
    }
    // Same refusal for the bench crate: its percentile rows are half of
    // the Instrument coverage check.
    if ctxs.iter().any(|c| c.rel == "crates/bench/src/lib.rs") && bench_ctx.is_none() {
        findings.push(Finding {
            file: "crates/bench/src/lib.rs".into(),
            line: 1,
            rule: "wire-stats",
            msg: "bench/src/metrics_report.rs missing: Instrument coverage check has no subject"
                .into(),
        });
    }

    let variants =
        error_ctx.and_then(|c| enum_variants(&c.toks, "FaultCause").map(|(v, line)| (c, v, line)));
    if let Some((ectx, variants, eline)) = &variants {
        check_fault_codes(ectx, variants, *eline, findings);
        if let Some(sctx) = stats_ctx {
            check_count_death(sctx, variants, findings);
        }
    }
    if let Some(sctx) = stats_ctx {
        check_locality_stats(sctx, findings);
    }
    if let Some(wctx) = wire_ctx {
        check_parcel_flags(wctx, findings);
    }
    if let Some(mctx) = metrics_ctx {
        match enum_variants(&mctx.toks, "Instrument") {
            Some((instruments, _)) => {
                check_instrument_coverage(mctx, "render_instruments", &instruments, findings);
                if let Some(bctx) = bench_ctx {
                    check_instrument_coverage(bctx, "metrics_rows", &instruments, findings);
                }
            }
            None => findings.push(Finding {
                file: mctx.rel.clone(),
                line: 1,
                rule: "wire-stats",
                msg: "metrics.rs has no `enum Instrument` — coverage check has no subject".into(),
            }),
        }
    }
}

// -------------------------------------------------------------- Instrument

/// Every `Instrument` variant must appear as an `Instrument::V` path in
/// the named function — the renderer and the bench row builder are the
/// two hand-written fan-outs where a new instrument can silently go
/// missing (the registry itself is array-indexed and cannot drop one).
fn check_instrument_coverage(
    ctx: &FileCtx,
    fn_name: &str,
    variants: &[String],
    findings: &mut Vec<Finding>,
) {
    let Some(body) = fn_body(ctx, fn_name) else {
        findings.push(Finding {
            file: ctx.rel.clone(),
            line: 1,
            rule: "wire-stats",
            msg: format!("no `fn {fn_name}` — Instrument coverage has no subject here"),
        });
        return;
    };
    let toks = &ctx.toks;
    let used: Vec<String> = (body.0..body.1)
        .filter_map(|i| enum_path(toks, i, "Instrument"))
        .collect();
    for v in variants {
        if !used.iter().any(|u| u == v) {
            findings.push(Finding {
                file: ctx.rel.clone(),
                line: toks[body.0].line,
                rule: "wire-stats",
                msg: format!(
                    "Instrument::{v} is not carried through `{fn_name}` — its histogram \
                     would vanish from the output"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- FaultCause

fn check_fault_codes(ctx: &FileCtx, variants: &[String], eline: u32, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let mut push = |line: u32, msg: String| {
        findings.push(Finding {
            file: ctx.rel.clone(),
            line,
            rule: "wire-stats",
            msg,
        })
    };
    // fn code: `FaultCause::V => <num>` arms.
    let Some(code_body) = fn_body(ctx, "code") else {
        push(eline, "FaultCause has no `fn code` wire encoding".into());
        return;
    };
    let mut codes: BTreeMap<String, (u64, u32)> = BTreeMap::new();
    for i in code_body.0..code_body.1 {
        if let Some(v) = fault_path(toks, i) {
            if arrow_at(toks, i + 4) {
                if let Some(n) = toks.get(i + 6) {
                    if n.kind == TokKind::Num {
                        if let Ok(val) = n.text.parse::<u64>() {
                            codes.insert(v, (val, n.line));
                        }
                    }
                }
            }
        }
    }
    for v in variants {
        if !codes.contains_key(v) {
            push(
                toks[code_body.0].line,
                format!("FaultCause::{v} has no arm in `code()` — wire code missing"),
            );
        }
    }
    let mut by_val: BTreeMap<u64, &String> = BTreeMap::new();
    for (v, (val, line)) in &codes {
        if let Some(prev) = by_val.insert(*val, v) {
            push(
                *line,
                format!("wire code {val} assigned to both FaultCause::{prev} and FaultCause::{v}"),
            );
        }
    }
    // fn from_code: `<num> => FaultCause::V`, `_ => FaultCause::Fallback`.
    let Some(fc_body) = fn_body(ctx, "from_code") else {
        push(
            eline,
            "FaultCause has no `fn from_code` wire decoding".into(),
        );
        return;
    };
    let mut back: BTreeMap<u64, String> = BTreeMap::new();
    let mut fallback: Option<String> = None;
    for i in fc_body.0..fc_body.1 {
        let t = &toks[i];
        if t.kind == TokKind::Num && arrow_at(toks, i + 1) {
            if let (Ok(val), Some(v)) = (t.text.parse::<u64>(), fault_path(toks, i + 3)) {
                back.insert(val, v);
            }
        } else if t.is_ident("_") && arrow_at(toks, i + 1) {
            fallback = fault_path(toks, i + 3);
        }
    }
    if fallback.is_none() {
        push(
            toks[fc_body.0].line,
            "`from_code()` has no `_ =>` fallback: unknown codes from newer peers would panic"
                .into(),
        );
    }
    for (v, (val, line)) in &codes {
        match back.get(val) {
            Some(b) if b == v => {}
            Some(b) => push(
                *line,
                format!("`from_code({val})` returns FaultCause::{b}, but `code()` maps {v} to it"),
            ),
            None if fallback.as_deref() == Some(v.as_str()) => {} // rides `_`
            None => push(
                *line,
                format!(
                    "FaultCause::{v} (code {val}) is not decoded by `from_code` and is not \
                     the fallback variant"
                ),
            ),
        }
    }
}

fn check_count_death(ctx: &FileCtx, variants: &[String], findings: &mut Vec<Finding>) {
    let Some(body) = fn_body(ctx, "count_death") else {
        findings.push(Finding {
            file: ctx.rel.clone(),
            line: 1,
            rule: "wire-stats",
            msg: "stats.rs has no `count_death` — by-cause death counters unreachable".into(),
        });
        return;
    };
    let toks = &ctx.toks;
    let matched: Vec<String> = (body.0..body.1)
        .filter_map(|i| fault_path(toks, i))
        .collect();
    for v in variants {
        if !matched.iter().any(|m| m == v) {
            findings.push(Finding {
                file: ctx.rel.clone(),
                line: toks[body.0].line,
                rule: "wire-stats",
                msg: format!("FaultCause::{v} has no by-cause arm in `count_death`"),
            });
        }
    }
}

// ------------------------------------------------------------ LocalityStats

fn check_locality_stats(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let mut push = |line: u32, msg: String| {
        findings.push(Finding {
            file: ctx.rel.clone(),
            line,
            rule: "wire-stats",
            msg,
        })
    };
    let Some((counters, _)) = struct_fields(toks, "LocalityCounters") else {
        push(1, "struct LocalityCounters not found".into());
        return;
    };
    let Some((stats, stats_idx)) = struct_fields(toks, "LocalityStats") else {
        push(1, "struct LocalityStats not found".into());
        return;
    };
    let stats_line = toks[stats_idx].line;
    for f in &counters {
        if !stats.contains(f) {
            push(
                stats_line,
                format!("counter `{f}` has no mirror field in LocalityStats"),
            );
        }
    }
    for f in &stats {
        if !counters.contains(f) {
            push(
                stats_line,
                format!("LocalityStats field `{f}` has no LocalityCounters source"),
            );
        }
    }
    if !derives(toks, stats_idx, "Serialize") {
        push(
            stats_line,
            "LocalityStats must derive serde::Serialize — the px-bench JSON emitter is \
             serde-driven and would drop it from artifacts"
                .into(),
        );
    }
    // Field coverage in snapshot / delta_from / total.
    let passes: &[(&str, &str)] = &[
        ("snapshot", "init"),
        ("delta_from", "init"),
        ("total", "add"),
    ];
    for (fn_name, mode) in passes {
        // All fns with that name (both delta_from impls count as one
        // search space; the locality fields live in the LocalityStats one).
        let bodies: Vec<(usize, usize)> = ctx
            .fns
            .iter()
            .filter(|f| f.name == *fn_name && !f.in_test)
            .map(|f| (f.body.0, f.body.1))
            .collect();
        if bodies.is_empty() {
            push(stats_line, format!("stats.rs has no `fn {fn_name}`"));
            continue;
        }
        for f in &stats {
            let present = bodies.iter().any(|&(o, c)| {
                (o..c).any(|i| {
                    if !toks[i].is_ident(f) {
                        return false;
                    }
                    match *mode {
                        // `field: value` initializer
                        "init" => next_sig(toks, i + 1).is_some_and(|n| {
                            toks[n].is_punct(':')
                                && !toks.get(n + 1).is_some_and(|q| q.is_punct(':'))
                        }),
                        // `t.field += l.field`
                        _ => {
                            i.checked_sub(1)
                                .and_then(|p| prev_sig(toks, p))
                                .is_some_and(|p| toks[p].is_punct('.'))
                                && next_sig(toks, i + 1).is_some_and(|n| toks[n].is_punct('+'))
                        }
                    }
                })
            });
            if !present {
                let line = toks[bodies[0].0].line;
                push(
                    line,
                    format!("LocalityStats counter `{f}` is not carried through `{fn_name}`"),
                );
            }
        }
    }
}

// ------------------------------------------------------------- parcel flags

fn check_parcel_flags(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let mut push = |line: u32, msg: String| {
        findings.push(Finding {
            file: ctx.rel.clone(),
            line,
            rule: "wire-stats",
            msg,
        })
    };
    // `mod parcel_flags { .. }`
    let Some(m) = (0..toks.len()).find(|&i| {
        toks[i].is_ident("parcel_flags")
            && i.checked_sub(1)
                .and_then(|p| prev_sig(toks, p))
                .is_some_and(|p| toks[p].is_ident("mod"))
    }) else {
        push(1, "wire/src/lib.rs has no `mod parcel_flags`".into());
        return;
    };
    let Some(open) = next_sig(toks, m + 1).filter(|&o| toks[o].is_punct('{')) else {
        return;
    };
    let close = matching_brace(toks, open);
    // Consts: `const NAME: u8 = <expr>;` — expr is a number, `1 << k`,
    // or an OR chain of earlier consts.
    struct Flag {
        name: String,
        line: u32,
        value: u64,
        or_chain: Vec<String>,
    }
    let mut flags: Vec<Flag> = Vec::new();
    let mut i = open + 1;
    while i < close {
        if toks[i].is_ident("const") {
            let Some(n) = next_sig(toks, i + 1) else {
                break;
            };
            let name = toks[n].text.clone();
            let line = toks[n].line;
            let Some(eq) = (n..close).find(|&j| toks[j].is_punct('=')) else {
                break;
            };
            let Some(semi) = (eq..close).find(|&j| toks[j].is_punct(';')) else {
                break;
            };
            let expr: Vec<&Token> = toks[eq + 1..semi]
                .iter()
                .filter(|t| !t.is_comment())
                .collect();
            let mut value = 0u64;
            let mut or_chain = Vec::new();
            if expr.len() == 1 && expr[0].kind == TokKind::Num {
                value = expr[0].text.parse().unwrap_or(0);
            } else if expr.len() == 4
                && expr[0].kind == TokKind::Num
                && expr[1].is_punct('<')
                && expr[2].is_punct('<')
                && expr[3].kind == TokKind::Num
            {
                let base: u64 = expr[0].text.parse().unwrap_or(0);
                let sh: u32 = expr[3].text.parse().unwrap_or(0);
                value = base << sh;
            } else {
                // OR chain of earlier const names.
                for t in &expr {
                    if t.kind == TokKind::Ident {
                        or_chain.push(t.text.clone());
                        if let Some(f) = flags.iter().find(|f| f.name == t.text) {
                            value |= f.value;
                        }
                    }
                }
            }
            flags.push(Flag {
                name,
                line,
                value,
                or_chain,
            });
            i = semi;
        }
        i += 1;
    }
    let bits: Vec<&Flag> = flags.iter().filter(|f| f.or_chain.is_empty()).collect();
    for (a, fa) in bits.iter().enumerate() {
        if fa.value.count_ones() != 1 {
            push(
                fa.line,
                format!(
                    "parcel flag {} is not a single bit (value {:#x})",
                    fa.name, fa.value
                ),
            );
        }
        for fb in bits.iter().skip(a + 1) {
            if fa.value == fb.value {
                push(
                    fb.line,
                    format!(
                        "parcel flags {} and {} share bit {:#x}",
                        fa.name, fb.name, fa.value
                    ),
                );
            }
        }
    }
    match flags.iter().find(|f| !f.or_chain.is_empty()) {
        None => push(
            toks[m].line,
            "parcel_flags has no KNOWN mask (OR of all flags) — the decoder cannot reject \
             unknown bits"
                .into(),
        ),
        Some(known) => {
            for b in &bits {
                if !known.or_chain.contains(&b.name) {
                    push(
                        known.line,
                        format!(
                            "parcel flag {} is missing from the {} mask — parcels carrying it \
                             would be rejected as undecodable",
                            b.name, known.name
                        ),
                    );
                }
            }
        }
    }
}

// ------------------------------------------------------------------ helpers

/// `FaultCause::V` starting at `i` → `V`.
fn fault_path(toks: &[Token], i: usize) -> Option<String> {
    enum_path(toks, i, "FaultCause")
}

/// `<Enum>::V` starting at `i` → `V`.
fn enum_path(toks: &[Token], i: usize, enum_name: &str) -> Option<String> {
    if toks.get(i)?.is_ident(enum_name)
        && toks.get(i + 1)?.is_punct(':')
        && toks.get(i + 2)?.is_punct(':')
        && toks.get(i + 3)?.kind == TokKind::Ident
    {
        Some(toks[i + 3].text.clone())
    } else {
        None
    }
}

/// `=>` at token index `i`.
fn arrow_at(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct('=')) && toks.get(i + 1).is_some_and(|t| t.is_punct('>'))
}

/// First function with this name in the file.
fn fn_body(ctx: &FileCtx, name: &str) -> Option<(usize, usize)> {
    ctx.fns.iter().find(|f| f.name == name).map(|f| f.body)
}

/// Variants of `enum <name>` (unit variants) and the enum's line.
fn enum_variants(toks: &[Token], name: &str) -> Option<(Vec<String>, u32)> {
    let e = (0..toks.len()).find(|&i| {
        toks[i].is_ident(name)
            && i.checked_sub(1)
                .and_then(|p| prev_sig(toks, p))
                .is_some_and(|p| toks[p].is_ident("enum"))
    })?;
    let open = next_sig(toks, e + 1).filter(|&o| toks[o].is_punct('{'))?;
    let close = matching_brace(toks, open);
    let mut out = Vec::new();
    let mut depth = 0i64;
    for i in open..=close {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') {
            depth -= 1;
        } else if depth == 1 && t.kind == TokKind::Ident {
            let first_upper = t
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase());
            let delim = next_sig(toks, i + 1)
                .is_some_and(|n| toks[n].is_punct(',') || toks[n].is_punct('}'));
            if first_upper && delim {
                out.push(t.text.clone());
            }
        }
    }
    Some((out, toks[e].line))
}

/// Fields of `struct <name>` and the token index of the name.
fn struct_fields(toks: &[Token], name: &str) -> Option<(Vec<String>, usize)> {
    let s = (0..toks.len()).find(|&i| {
        toks[i].is_ident(name)
            && i.checked_sub(1)
                .and_then(|p| prev_sig(toks, p))
                .is_some_and(|p| toks[p].is_ident("struct"))
    })?;
    let open = next_sig(toks, s + 1).filter(|&o| toks[o].is_punct('{'))?;
    let close = matching_brace(toks, open);
    let mut out = Vec::new();
    let mut depth = 0i64;
    for i in open..=close {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct('>') {
            depth -= 1;
        } else if depth == 1
            && t.kind == TokKind::Ident
            && t.text != "pub"
            && next_sig(toks, i + 1).is_some_and(|n| toks[n].is_punct(':'))
        {
            out.push(t.text.clone());
        }
    }
    Some((out, s))
}

/// Does the item whose name token sits at `idx` carry `#[derive(.. <what> ..)]`?
fn derives(toks: &[Token], idx: usize, what: &str) -> bool {
    // Walk back over attributes: `] .. [ #` groups above the item.
    let Some(kw) = idx.checked_sub(1).and_then(|p| prev_sig(toks, p)) else {
        return false;
    };
    // kw is `struct`; visibility modifiers and attributes sit before it.
    let mut j = kw as isize - 1;
    while j > 0 {
        while j > 0 && {
            let t = &toks[j as usize];
            t.is_comment()
                || t.is_ident("pub")
                || t.is_ident("crate")
                || t.is_ident("super")
                || t.is_punct('(')
                || t.is_punct(')')
        } {
            j -= 1;
        }
        if j <= 0 || !toks[j as usize].is_punct(']') {
            return false;
        }
        // Scan back to the `[` and its `#`, collecting idents.
        let mut found = false;
        let mut depth = 0i64;
        while j >= 0 {
            let t = &toks[j as usize];
            if t.is_punct(']') {
                depth += 1;
            } else if t.is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    j -= 1; // at `#`
                    break;
                }
            } else if t.kind == TokKind::Ident && t.text == what {
                found = true;
            }
            j -= 1;
        }
        if found {
            return true;
        }
        j -= 1; // past `#`
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::analyze_files;

    /// A minimal, *complete* error.rs / stats.rs / wire lib.rs trio.
    const GOOD_ERROR: &str = "\
pub enum FaultCause { HopCap, Decode, HandlerError }
impl FaultCause {
    pub fn code(self) -> u8 {
        match self {
            FaultCause::HopCap => 0,
            FaultCause::Decode => 1,
            FaultCause::HandlerError => 2,
        }
    }
    pub fn from_code(code: u8) -> FaultCause {
        match code {
            0 => FaultCause::HopCap,
            1 => FaultCause::Decode,
            _ => FaultCause::HandlerError,
        }
    }
}";
    const GOOD_STATS: &str = "\
pub struct LocalityCounters { pub parcels_sent: AtomicU64, pub dead_parcels: AtomicU64 }
impl LocalityCounters {
    pub fn count_death(&self, cause: FaultCause) {
        match cause {
            FaultCause::HopCap => bump!(self.dead_parcels),
            FaultCause::Decode => bump!(self.dead_parcels),
            FaultCause::HandlerError => bump!(self.dead_parcels),
        }
    }
    pub fn snapshot(&self) -> LocalityStats {
        LocalityStats {
            parcels_sent: self.parcels_sent.load(Ordering::Relaxed),
            dead_parcels: self.dead_parcels.load(Ordering::Relaxed),
        }
    }
}
#[derive(Debug, Clone, serde::Serialize)]
pub struct LocalityStats { pub parcels_sent: u64, pub dead_parcels: u64 }
impl LocalityStats {
    pub fn delta_from(&self, e: &LocalityStats) -> LocalityStats {
        LocalityStats {
            parcels_sent: self.parcels_sent - e.parcels_sent,
            dead_parcels: self.dead_parcels - e.dead_parcels,
        }
    }
}
impl StatsSnapshot {
    pub fn total(&self) -> LocalityStats {
        let mut t = LocalityStats::default();
        for l in &self.localities {
            t.parcels_sent += l.parcels_sent;
            t.dead_parcels += l.dead_parcels;
        }
        t
    }
}";
    const GOOD_WIRE: &str = "\
pub mod parcel_flags {
    pub const STAGED: u8 = 1 << 0;
    pub const FAULT: u8 = 1 << 1;
    pub const KNOWN: u8 = STAGED | FAULT;
}";
    /// A minimal metrics.rs: the `Instrument` enum plus a renderer that
    /// spells out every variant.
    const GOOD_METRICS: &str = "\
pub enum Instrument { QueueWait, NetRtt, DirLookup }
pub fn render_instruments(snap: &MetricsSnapshot, out: &mut String) {
    render_one(snap.get(Instrument::QueueWait), out);
    render_one(snap.get(Instrument::NetRtt), out);
    render_one(snap.get(Instrument::DirLookup), out);
}";
    /// A minimal metrics_report.rs: the bench row builder's explicit list.
    const GOOD_BENCH: &str = "\
pub fn metrics_rows(snap: &MetricsSnapshot) -> Vec<MetricsRow> {
    vec![
        row(snap, Instrument::QueueWait),
        row(snap, Instrument::NetRtt),
        row(snap, Instrument::DirLookup),
    ]
}";

    fn run(error: &str, stats: &str, wire: &str) -> Vec<String> {
        analyze_files(&[
            ("crates/core/src/error.rs".into(), error.into()),
            ("crates/core/src/stats.rs".into(), stats.into()),
            ("crates/wire/src/lib.rs".into(), wire.into()),
        ])
        .into_iter()
        .filter(|f| f.rule == "wire-stats")
        .map(|f| f.to_string())
        .collect()
    }

    #[test]
    fn complete_trio_passes() {
        let found = run(GOOD_ERROR, GOOD_STATS, GOOD_WIRE);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn missing_code_arm_and_duplicate_code_caught() {
        let bad = GOOD_ERROR.replace("FaultCause::Decode => 1,\n", "");
        let found = run(&bad, GOOD_STATS, GOOD_WIRE);
        assert!(
            found
                .iter()
                .any(|m| m.contains("Decode has no arm in `code()`")),
            "{found:?}"
        );
        let bad = GOOD_ERROR.replace("FaultCause::Decode => 1,", "FaultCause::Decode => 0,");
        let found = run(&bad, GOOD_STATS, GOOD_WIRE);
        assert!(
            found.iter().any(|m| m.contains("assigned to both")),
            "{found:?}"
        );
    }

    #[test]
    fn from_code_must_invert_except_fallback() {
        // Dropping Decode's decode arm (not the fallback variant) is caught.
        let bad = GOOD_ERROR.replace("1 => FaultCause::Decode,\n", "");
        let found = run(&bad, GOOD_STATS, GOOD_WIRE);
        assert!(
            found
                .iter()
                .any(|m| m.contains("not decoded by `from_code`")),
            "{found:?}"
        );
        // Dropping the fallback arm entirely is caught.
        let bad = GOOD_ERROR.replace("_ => FaultCause::HandlerError,\n", "");
        let found = run(&bad, GOOD_STATS, GOOD_WIRE);
        assert!(
            found.iter().any(|m| m.contains("no `_ =>` fallback")),
            "{found:?}"
        );
    }

    #[test]
    fn count_death_must_cover_every_cause() {
        let bad = GOOD_STATS.replace("FaultCause::Decode => bump!(self.dead_parcels),\n", "");
        let found = run(GOOD_ERROR, &bad, GOOD_WIRE);
        assert!(
            found
                .iter()
                .any(|m| m.contains("no by-cause arm in `count_death`")),
            "{found:?}"
        );
    }

    #[test]
    fn stats_mirror_and_paths_must_be_complete() {
        // Mirror field missing.
        let bad = GOOD_STATS.replace(
            "pub struct LocalityStats { pub parcels_sent: u64, pub dead_parcels: u64 }",
            "pub struct LocalityStats { pub parcels_sent: u64 }",
        );
        let found = run(GOOD_ERROR, &bad, GOOD_WIRE);
        assert!(
            found
                .iter()
                .any(|m| m.contains("`dead_parcels` has no mirror field")),
            "{found:?}"
        );
        // delta_from drops a field.
        let bad = GOOD_STATS.replace("dead_parcels: self.dead_parcels - e.dead_parcels,\n", "");
        let found = run(GOOD_ERROR, &bad, GOOD_WIRE);
        assert!(
            found
                .iter()
                .any(|m| m.contains("`dead_parcels` is not carried through `delta_from`")),
            "{found:?}"
        );
        // total drops a field.
        let bad = GOOD_STATS.replace("t.dead_parcels += l.dead_parcels;\n", "");
        let found = run(GOOD_ERROR, &bad, GOOD_WIRE);
        assert!(
            found
                .iter()
                .any(|m| m.contains("`dead_parcels` is not carried through `total`")),
            "{found:?}"
        );
        // Serialize derive dropped.
        let bad = GOOD_STATS.replace("#[derive(Debug, Clone, serde::Serialize)]", "");
        let found = run(GOOD_ERROR, &bad, GOOD_WIRE);
        assert!(
            found.iter().any(|m| m.contains("derive serde::Serialize")),
            "{found:?}"
        );
    }

    fn run_metrics(metrics: &str, bench: &str) -> Vec<String> {
        analyze_files(&[
            ("crates/core/src/metrics.rs".into(), metrics.into()),
            ("crates/bench/src/metrics_report.rs".into(), bench.into()),
        ])
        .into_iter()
        .filter(|f| f.rule == "wire-stats")
        .map(|f| f.to_string())
        .collect()
    }

    #[test]
    fn instrument_coverage_passes_when_both_fanouts_complete() {
        let found = run_metrics(GOOD_METRICS, GOOD_BENCH);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn instrument_missing_from_renderer_or_bench_rows_caught() {
        // Seed an instrument the exposition page forgot to render.
        let bad = GOOD_METRICS.replace("    render_one(snap.get(Instrument::NetRtt), out);\n", "");
        let found = run_metrics(&bad, GOOD_BENCH);
        assert!(
            found
                .iter()
                .any(|m| m
                    .contains("Instrument::NetRtt is not carried through `render_instruments`")),
            "{found:?}"
        );
        // Seed an instrument the bench JSON rows forgot to carry.
        let bad = GOOD_BENCH.replace("row(snap, Instrument::NetRtt),", "");
        let found = run_metrics(GOOD_METRICS, &bad);
        assert!(
            found
                .iter()
                .any(|m| m.contains("Instrument::NetRtt is not carried through `metrics_rows`")),
            "{found:?}"
        );
        // A late-added variant (the directory-lookup instrument shape) is
        // held to the same standard in both fan-outs.
        let bad = GOOD_METRICS.replace(
            "    render_one(snap.get(Instrument::DirLookup), out);\n",
            "",
        );
        let found = run_metrics(&bad, GOOD_BENCH);
        assert!(
            found.iter().any(|m| {
                m.contains("Instrument::DirLookup is not carried through `render_instruments`")
            }),
            "{found:?}"
        );
    }

    #[test]
    fn instrument_check_refuses_to_pass_vacuously() {
        // The real core crate without metrics.rs: refused.
        let found: Vec<String> = analyze_files(&[
            ("crates/core/src/lib.rs".into(), "pub mod metrics;".into()),
            ("crates/core/src/error.rs".into(), GOOD_ERROR.into()),
            ("crates/core/src/stats.rs".into(), GOOD_STATS.into()),
        ])
        .into_iter()
        .filter(|f| f.rule == "wire-stats")
        .map(|f| f.to_string())
        .collect();
        assert!(
            found.iter().any(|m| m.contains("metrics.rs missing")),
            "{found:?}"
        );
        // The real bench crate without metrics_report.rs: refused.
        let found: Vec<String> = analyze_files(&[(
            "crates/bench/src/lib.rs".into(),
            "pub mod metrics_report;".into(),
        )])
        .into_iter()
        .filter(|f| f.rule == "wire-stats")
        .map(|f| f.to_string())
        .collect();
        assert!(
            found
                .iter()
                .any(|m| m.contains("metrics_report.rs missing")),
            "{found:?}"
        );
    }

    #[test]
    fn flag_bits_unique_and_known_exhaustive() {
        let bad = GOOD_WIRE.replace(
            "pub const FAULT: u8 = 1 << 1;",
            "pub const FAULT: u8 = 1 << 0;",
        );
        let found = run(GOOD_ERROR, GOOD_STATS, &bad);
        assert!(found.iter().any(|m| m.contains("share bit")), "{found:?}");
        let bad = GOOD_WIRE.replace("STAGED | FAULT", "STAGED");
        let found = run(GOOD_ERROR, GOOD_STATS, &bad);
        assert!(
            found
                .iter()
                .any(|m| m.contains("FAULT is missing from the KNOWN mask")),
            "{found:?}"
        );
    }
}
