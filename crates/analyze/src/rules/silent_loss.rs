//! `no-silent-loss`: in the scheduler and the transports, a
//! `Parcel`-typed binding may not go out of scope silently — every path
//! must hand it onward (queue push, continuation delivery, field
//! handoff) or kill it loudly via `kill_parcel`. Intentional drops carry
//! a line-level `// px-analyze: allow(no-silent-loss): why`.
//!
//! Why: the transport contract (see `px_core::net::Transport`) makes
//! "no silent loss" invariant number one — a parcel that vanishes
//! strands its continuation forever, and every future/dataflow/barrier
//! downstream of it deadlocks with no diagnostic. The bug class is a
//! quiet `return;` on a rarely taken branch. This rule walks each
//! function in the files that own parcels in flight and checks, branch
//! by branch, that no tracked binding can reach a `return` or the end
//! of its scope unconsumed.
//!
//! What is tracked (stated honestly — this is a lint, not a borrow
//! checker):
//! - parameters whose type mentions `Parcel` by value (`p: Parcel`,
//!   `Vec<Parcel>`; `&Parcel` borrows are not ours to account for), and
//! - `let` bindings constructed from `Parcel::new(..)`,
//!   `Parcel::decode(..)`, a `Parcel { .. }` literal, or an explicit
//!   `: Parcel` annotation.
//!
//! A binding is *consumed* by a move-shaped use: bare `p` as a call
//! argument / tail value / `match p` scrutinee / `return p`, or a field
//! handoff `p.field` passed as an argument (how `run_parcel` delivers
//! `p.cont` to `apply_continuation`). `&p` and `p.method(..)` are reads
//! and keep the obligation alive. Branches are tracked: a consume
//! inside an `if` without `else` does not satisfy the paths around it,
//! while a `match`/`if-else` that consumes (or diverges) in *every* arm
//! does. Pattern-bound parcels (`Ok(p) => ..`) and `?`-operator early
//! exits are out of scope; the rule is a net for the common shape, the
//! allow comment is the escape hatch for what it cannot see.

use crate::lexer::{TokKind, Token};
use crate::segment::{matching_brace, next_sig, prev_sig};
use crate::{FileCtx, Finding};

/// Files whose functions own parcels in flight.
const TARGET_SUFFIXES: &[&str] = &["src/sched.rs", "src/net/tcp.rs", "src/net/inproc.rs"];

pub fn check(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    if !TARGET_SUFFIXES.iter().any(|s| ctx.rel.ends_with(s)) {
        return;
    }
    let closures = crate::segment::closure_ranges(&ctx.toks);
    for f in &ctx.fns {
        if f.in_test {
            continue;
        }
        for b in bindings(&ctx.toks, f) {
            let mut scan = Scan {
                toks: &ctx.toks,
                name: &b.name,
                closures: &closures,
                findings,
                file: &ctx.rel,
                func: &f.name,
            };
            let moved = scan.range(b.scope.0, b.scope.1, false, false);
            if !moved {
                findings.push(Finding {
                    file: ctx.rel.clone(),
                    line: b.line,
                    rule: "no-silent-loss",
                    msg: format!(
                        "parcel binding `{}` in `{}` can go out of scope without \
                         kill_parcel or a handoff",
                        b.name, f.name
                    ),
                });
            }
        }
    }
}

/// A tracked parcel binding and the token range it is live over.
struct Binding {
    name: String,
    line: u32,
    /// `[start, end)` token range to scan (after the intro, to scope end).
    scope: (usize, usize),
}

/// Parameters typed `Parcel`-by-value plus `let` bindings constructed
/// from a parcel expression.
fn bindings(toks: &[Token], f: &crate::segment::FnItem) -> Vec<Binding> {
    let mut out = Vec::new();
    // --- parameters ---
    if let Some(open) = (f.fn_idx..f.body.0).find(|&i| toks[i].is_punct('(')) {
        let close = crate::segment::matching_close_paren(toks, open);
        let mut i = open + 1;
        while i < close {
            // One parameter: `[mut] name : TYPE` up to a top-level `,`.
            let start = i;
            let mut depth = 0i64;
            let mut end = i;
            while end < close {
                let t = &toks[end];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(',') {
                    break;
                }
                end += 1;
            }
            if let Some(colon) = (start..end).find(|&j| toks[j].is_punct(':')) {
                let name_idx = (start..colon)
                    .rfind(|&j| toks[j].kind == TokKind::Ident && !toks[j].is_ident("mut"));
                let ty = &toks[colon + 1..end];
                let by_value = ty.first().is_some_and(|t| !t.is_punct('&'));
                let is_parcel = ty.iter().any(|t| t.is_ident("Parcel"));
                if let Some(n) = name_idx {
                    if by_value && is_parcel && !toks[n].text.starts_with('_') {
                        out.push(Binding {
                            name: toks[n].text.clone(),
                            line: toks[n].line,
                            scope: (f.body.0 + 1, f.body.1),
                        });
                    }
                }
            }
            i = end + 1;
        }
    }
    // --- let bindings ---
    let (b_open, b_close) = f.body;
    // Enclosing-block map so a nested `let` scopes to its own block.
    let mut stack: Vec<usize> = Vec::new();
    let mut i = b_open;
    while i <= b_close {
        let t = &toks[i];
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            stack.pop();
        } else if t.is_ident("let") {
            if let Some(bind) = let_binding(toks, i, b_close) {
                let scope_close = stack
                    .last()
                    .map(|&o| matching_brace(toks, o))
                    .unwrap_or(b_close);
                out.push(Binding {
                    name: bind.0,
                    line: toks[i].line,
                    scope: (bind.1, scope_close),
                });
            }
        }
        i += 1;
    }
    out
}

/// Parse `let [mut] name [: T] = RHS ;` at the `let` keyword; return the
/// binding name and the token index just past the terminating `;` when
/// the RHS (or annotation) is parcel-shaped.
fn let_binding(toks: &[Token], let_idx: usize, limit: usize) -> Option<(String, usize)> {
    let mut n = next_sig(toks, let_idx + 1)?;
    if toks[n].is_ident("mut") {
        n = next_sig(toks, n + 1)?;
    }
    if toks[n].kind != TokKind::Ident || toks[n].text.starts_with('_') {
        return None; // tuple/struct patterns and wildcards are not tracked
    }
    let name = toks[n].text.clone();
    let after = next_sig(toks, n + 1)?;
    if !(toks[after].is_punct(':') || toks[after].is_punct('=')) {
        return None;
    }
    // Scan to the statement's `;` at depth 0 (braces included: `let p =
    // match x { .. };`).
    let mut depth = 0i64;
    let mut j = after;
    let mut semi = None;
    while j <= limit {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && t.is_punct(';') {
            semi = Some(j);
            break;
        }
        j += 1;
    }
    let semi = semi?;
    // Parcel-shaped RHS or annotation?
    let span = &toks[after..semi];
    let mut shaped = false;
    for (k, t) in span.iter().enumerate() {
        if !t.is_ident("Parcel") {
            continue;
        }
        match span.get(k + 1) {
            Some(n1) if n1.is_punct('{') => shaped = true, // Parcel { .. }
            // `Parcel::new` / `Parcel::decode`
            Some(n1)
                if n1.is_punct(':')
                    && span
                        .get(k + 3)
                        .is_some_and(|m| m.is_ident("new") || m.is_ident("decode")) =>
            {
                shaped = true;
            }
            Some(n1) if n1.is_punct('=') || n1.is_punct(',') || n1.is_punct('>') => {
                // `: Parcel =`, `Vec<Parcel>` annotation
                shaped = true;
            }
            _ => {}
        }
    }
    shaped.then_some((name, semi + 1))
}

/// Branch-aware liveness walker for one binding.
struct Scan<'a> {
    toks: &'a [Token],
    name: &'a str,
    closures: &'a [(usize, usize)],
    findings: &'a mut Vec<Finding>,
    file: &'a str,
    func: &'a str,
}

impl Scan<'_> {
    /// Scan `[start, end)`; returns whether the binding is consumed on
    /// the fall-through path out of the range.
    fn range(&mut self, start: usize, end: usize, mut moved: bool, in_closure: bool) -> bool {
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            if t.is_punct('{') {
                let close = matching_brace(self.toks, i);
                if let Some(&(_, c)) = self.closures.iter().find(|&&(o, _)| o == i) {
                    // Closure body: a by-move capture consumes the parcel
                    // even if the closure never runs; `return` inside
                    // returns from the closure, not from us.
                    moved = self.range(i + 1, c, moved, true);
                } else {
                    // Plain block / struct literal: unconditional.
                    moved = self.range(i + 1, close, moved, in_closure);
                }
                i = close + 1;
                continue;
            }
            if t.is_ident("match") {
                let (ni, m) = self.match_construct(i, moved, in_closure);
                moved = m;
                i = ni;
                continue;
            }
            if t.is_ident("if") {
                let (ni, m) = self.if_chain(i, moved, in_closure);
                moved = m;
                i = ni;
                continue;
            }
            if t.is_ident("loop") || t.is_ident("while") || t.is_ident("for") {
                // Header executes; body may run zero times, so its moves
                // do not satisfy the fall-through path.
                if let Some(open) = self.block_open(i + 1, end) {
                    moved = self.range(i + 1, open, moved, in_closure);
                    let close = matching_brace(self.toks, open);
                    let _ = self.range(open + 1, close, moved, in_closure);
                    i = close + 1;
                } else {
                    i += 1;
                }
                continue;
            }
            if t.is_ident("return") && !in_closure {
                let stmt_end = self.stmt_end(i + 1, end);
                if self.span_moves(i + 1, stmt_end) {
                    moved = true;
                }
                if !moved {
                    self.findings.push(Finding {
                        file: self.file.to_string(),
                        line: t.line,
                        rule: "no-silent-loss",
                        msg: format!(
                            "`return` in `{}` drops parcel `{}` silently; route it \
                             through kill_parcel or hand it off first",
                            self.func, self.name
                        ),
                    });
                    // One finding per path: treat as handled downstream.
                    moved = true;
                }
                i = stmt_end;
                continue;
            }
            if t.kind == TokKind::Ident && t.text == self.name && self.is_move(i) {
                moved = true;
            }
            i += 1;
        }
        moved
    }

    /// Is the binding occurrence at `i` a move-shaped use?
    fn is_move(&self, i: usize) -> bool {
        if let Some(p) = i.checked_sub(1).and_then(|p| prev_sig(self.toks, p)) {
            let pt = &self.toks[p];
            if pt.is_punct('.') {
                return false; // `x.p` — a field of something else
            }
            if pt.is_punct('&') {
                return false; // borrow
            }
            if pt.is_punct(':')
                && p.checked_sub(1)
                    .and_then(|q| prev_sig(self.toks, q))
                    .is_some_and(|q| self.toks[q].is_punct(':'))
            {
                return false; // `path::p` names something else entirely
            }
            if pt.is_ident("mut") {
                // `&mut p` borrow
                if p.checked_sub(1)
                    .and_then(|q| prev_sig(self.toks, q))
                    .is_some_and(|q| self.toks[q].is_punct('&'))
                {
                    return false;
                }
            }
            if pt.is_ident("match") || pt.is_ident("return") {
                return true;
            }
        }
        let Some(n) = next_sig(self.toks, i + 1) else {
            return false;
        };
        let nt = &self.toks[n];
        if nt.is_punct(',') || nt.is_punct(')') || nt.is_punct(';') || nt.is_punct('}') {
            return true; // bare argument / tail value
        }
        if nt.is_punct('.') {
            // `p.cont` / `p.payload` passed as an argument is a handoff of
            // the state the invariant cares about (`run_parcel` delivers
            // `p.cont` to `apply_continuation`). Only the non-`Copy`
            // payload-bearing fields count: reading `p.dest` or `p.hops`
            // resolves nothing.
            if let Some(fld) = next_sig(self.toks, n + 1) {
                if self.toks[fld].is_ident("cont") || self.toks[fld].is_ident("payload") {
                    if let Some(after) = next_sig(self.toks, fld + 1) {
                        let at = &self.toks[after];
                        if at.is_punct(',') || at.is_punct(')') {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Does `[start, end)` contain a move-shaped use?
    fn span_moves(&self, start: usize, end: usize) -> bool {
        (start..end.min(self.toks.len()))
            .any(|j| self.toks[j].is_ident(self.name) && self.is_move(j))
    }

    /// Does `[start, end)` divert control (return / panic / break /
    /// continue), so the fall-through path never leaves it?
    fn span_exits(&self, start: usize, end: usize, in_closure: bool) -> bool {
        (start..end.min(self.toks.len())).any(|j| {
            let t = &self.toks[j];
            (t.is_ident("return") && !in_closure)
                || t.is_ident("break")
                || t.is_ident("continue")
                || ((t.is_ident("panic") || t.is_ident("unreachable") || t.is_ident("todo"))
                    && self.toks.get(j + 1).is_some_and(|n| n.is_punct('!')))
        })
    }

    /// First `{` at paren/bracket depth 0 in `[from, end)`.
    fn block_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i64;
        for j in from..end.min(self.toks.len()) {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                return Some(j);
            }
        }
        None
    }

    /// Token index just past the statement starting at `from` (its `;`
    /// at depth 0, or `end`).
    fn stmt_end(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i64;
        for j in from..end.min(self.toks.len()) {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            } else if depth == 0 && (t.is_punct(';') || t.is_punct(',')) {
                return j + 1;
            }
        }
        end
    }

    /// `match` at `i`: scan scrutinee and every arm; the construct
    /// consumes the binding iff every arm consumes or diverges.
    fn match_construct(&mut self, i: usize, moved: bool, in_closure: bool) -> (usize, bool) {
        let Some(open) = self.block_open(i + 1, self.toks.len()) else {
            return (i + 1, moved);
        };
        let mut moved = self.range(i + 1, open, moved, in_closure);
        let close = matching_brace(self.toks, open);
        let mut all_armed = true;
        let mut any_arm = false;
        let mut k = open + 1;
        while k < close {
            // Pattern: advance to `=>` (`=` `>` adjacent) at depth 0.
            let mut depth = 0i64;
            let mut arrow = None;
            let mut j = k;
            while j + 1 < close {
                let t = &self.toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('=') && self.toks[j + 1].is_punct('>') {
                    arrow = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(arrow) = arrow else { break };
            let Some(v) = next_sig(self.toks, arrow + 2) else {
                break;
            };
            let (vstart, vend, after) = if self.toks[v].is_punct('{') {
                let c = matching_brace(self.toks, v);
                let mut a = c + 1;
                if self.toks.get(a).is_some_and(|t| t.is_punct(',')) {
                    a += 1;
                }
                (v + 1, c, a)
            } else {
                // Expression arm: to `,` at depth 0 or the match close.
                let mut depth = 0i64;
                let mut e = v;
                while e < close {
                    let t = &self.toks[e];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(',') {
                        break;
                    }
                    e += 1;
                }
                (v, e, e + 1)
            };
            any_arm = true;
            let child = self.range(vstart, vend, moved, in_closure);
            let exits = self.span_exits(vstart, vend, in_closure);
            if !(child || exits) {
                all_armed = false;
            }
            k = after;
        }
        if any_arm && all_armed {
            moved = true;
        }
        (close + 1, moved)
    }

    /// `if`/`else if`/`else` chain at `i`; consumes the binding iff a
    /// final `else` exists and every branch consumes or diverges.
    fn if_chain(&mut self, i: usize, moved: bool, in_closure: bool) -> (usize, bool) {
        let mut moved = moved;
        let mut branches: Vec<bool> = Vec::new();
        let mut has_else = false;
        let mut k = i; // at an `if`
        let end;
        loop {
            let Some(open) = self.block_open(k + 1, self.toks.len()) else {
                return (k + 1, moved);
            };
            // The condition runs on the path that reaches it.
            moved = self.range(k + 1, open, moved, in_closure);
            let close = matching_brace(self.toks, open);
            let child = self.range(open + 1, close, moved, in_closure);
            let exits = self.span_exits(open + 1, close, in_closure);
            branches.push(child || exits);
            match next_sig(self.toks, close + 1) {
                Some(e) if self.toks[e].is_ident("else") => match next_sig(self.toks, e + 1) {
                    Some(n) if self.toks[n].is_ident("if") => {
                        k = n;
                        continue;
                    }
                    Some(n) if self.toks[n].is_punct('{') => {
                        let c2 = matching_brace(self.toks, n);
                        let child = self.range(n + 1, c2, moved, in_closure);
                        let exits = self.span_exits(n + 1, c2, in_closure);
                        branches.push(child || exits);
                        has_else = true;
                        end = c2 + 1;
                        break;
                    }
                    _ => {
                        end = close + 1;
                        break;
                    }
                },
                _ => {
                    end = close + 1;
                    break;
                }
            }
        }
        if has_else && branches.iter().all(|&b| b) {
            moved = true;
        }
        (end, moved)
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_files;

    fn run(src: &str) -> Vec<String> {
        analyze_files(&[("crates/core/src/sched.rs".into(), src.into())])
            .into_iter()
            .filter(|f| f.rule == "no-silent-loss")
            .map(|f| f.to_string())
            .collect()
    }

    #[test]
    fn early_return_dropping_parcel_flagged() {
        // The shape that motivated the rule: a guard branch returns with
        // the parcel still owned.
        let src = "\
fn run(rt: &R, p: Parcel) {
    let a = p.action;
    if a == sys::NOOP {
        return;
    }
    deliver(rt, p);
}";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains(":4:"), "{found:?}");
        assert!(found[0].contains("drops parcel `p`"));
    }

    #[test]
    fn unused_parcel_param_flagged_at_fn_end() {
        let found = run("fn f(p: Parcel) { let x = 1; drop_all(x); }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("out of scope"));
    }

    #[test]
    fn kill_parcel_and_handoff_pass() {
        assert!(run("fn f(rt: &R, p: Parcel) { kill_parcel(rt, p, cause, why); }").is_empty());
        assert!(run("fn f(q: &Q, p: Parcel) { q.inject.push(p); }").is_empty());
        // Field handoff (how run_parcel delivers the continuation).
        assert!(run("fn f(rt: &R, p: Parcel) { apply(rt, p.cont, p.payload); }").is_empty());
    }

    #[test]
    fn all_arms_consuming_match_passes() {
        let src = "\
fn f(rt: &R, p: Parcel) {
    match rt.get(p.dest) {
        Ok(h) => deliver(h, p),
        Err(e) => kill_parcel(rt, p, cause_of(&e), e.to_string()),
    }
}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn match_with_leaky_arm_flagged() {
        let src = "\
fn f(rt: &R, p: Parcel) {
    match rt.get(p.dest) {
        Ok(h) => deliver(h, p),
        Err(_) => {}
    }
}";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn if_without_else_does_not_satisfy_other_paths() {
        let found = run("fn f(q: &Q, p: Parcel, fast: bool) { if fast { q.push(p); } }");
        assert_eq!(found.len(), 1, "{found:?}");
        // …but a diverging arm plus fall-through consume is fine.
        let src =
            "fn f(q: &Q, p: Parcel, fast: bool) { if fast { q.push(p); return; } s.send(p); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn if_else_both_consuming_passes() {
        let src = "fn f(q: &Q, s: &S, p: Parcel, fast: bool) \
                   { if fast { q.push(p); } else { s.send(p); } }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn borrows_do_not_consume() {
        let found = run("fn f(p: Parcel) { log(&p); observe(p.hops > 0); }");
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn tracked_let_from_decode() {
        let src = "\
fn f(rt: &R, bytes: &[u8]) {
    let mut p = Parcel::new(target, action, value, cont);
    p.hops = 1;
    if rt.full() {
        return;
    }
    rt.route(p);
}";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains(":5:"), "{found:?}");
    }

    #[test]
    fn line_level_allow_suppresses_with_justification() {
        let src = "\
fn f(p: Parcel) {
    // px-analyze: allow(no-silent-loss): NOOP parcels exist to be dropped.
    if p.action == 0 { return; }
    deliver(p);
}";
        // The allow sits on the line above the `return` line… the finding
        // is on line 3, allow on line 2 → suppressed.
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn non_target_files_ignored() {
        let found = analyze_files(&[(
            "crates/core/src/agas.rs".into(),
            "fn f(p: Parcel) { let x = 1; use_only(x); }".into(),
        )]);
        assert!(!found.iter().any(|f| f.rule == "no-silent-loss"));
    }

    #[test]
    fn closures_and_loops() {
        // A by-move capture consumes; a loop body alone does not satisfy
        // the fall-through path.
        assert!(run("fn f(ex: &E, p: Parcel) { ex.spawn(move || { run(p); }); }").is_empty());
        let found = run("fn f(q: &Q, p: Parcel) { while q.busy() { q.push(p); } }");
        assert_eq!(found.len(), 1, "{found:?}");
    }
}
