//! `lock-order`: nested lock acquisitions must agree on a single global
//! order; cycles are reported with the witnessing call paths.
//!
//! Why: the runtime holds locks briefly and almost never nested — but
//! "almost" is how deadlocks ship. If function `f` takes `a` then `b`
//! while `g` takes `b` then `a`, both pass every test until two threads
//! interleave under load. The rule extracts, per function, the sequence
//! of `.lock()`/`.read()`/`.write()` acquisitions on *named* receivers
//! (fields, statics, locals) that overlap in time, builds the global
//! acquired-before graph, and reports every cycle with the `file:line`
//! of each witnessing edge so the fix (pick one order) is mechanical.
//!
//! Heuristics, stated honestly:
//! - A guard bound by a plain `let g = x.lock();` statement is held
//!   until its block ends or `drop(g)`; any other acquisition (a
//!   temporary in a larger expression) is held to the end of the
//!   statement.
//! - Receivers are compared by trailing name (`self.ports.port(d, s)
//!   .lock()` is the lock named `port`); distinct objects sharing a
//!   field name collapse into one node. That can over-approximate, and
//!   a justified line-level allow is the escape hatch.
//! - Test code is excluded: tests serialize on their own threads and
//!   routinely nest locks to stage fixtures.
//!
//! Re-entrant acquisition of the *same* named lock while it is held is
//! reported too — the vendored `parking_lot` mutex deadlocks on
//! re-lock rather than panicking.

use crate::lexer::{TokKind, Token};
use crate::segment::{next_sig, prev_sig, receiver_name};
use crate::{FileCtx, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// One witnessed acquired-before edge: `first` was held while `second`
/// was acquired.
#[derive(Debug, Clone)]
struct Edge {
    first: String,
    second: String,
    file: String,
    line: u32,
    func: String,
}

/// A lock currently held at some point in a function walk.
struct Held {
    name: String,
    /// Guard binding (`let g = ...lock();`), if the guard persists.
    guard: Option<String>,
    /// Brace depth the guard lives at; popped when the block closes.
    depth: usize,
    /// Statement-temporary guard: released at the next `;`.
    temp: bool,
}

/// Is the token at `i` a lock acquisition (`.lock()` / `.read()` /
/// `.write()` with an empty argument list)? Returns the close paren.
fn acquisition(toks: &[Token], i: usize) -> Option<usize> {
    let t = &toks[i];
    if !(t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")) {
        return None;
    }
    let prev = prev_sig(toks, i.checked_sub(1)?)?;
    if !toks[prev].is_punct('.') {
        return None;
    }
    let open = next_sig(toks, i + 1)?;
    let close = next_sig(toks, open + 1)?;
    (toks[open].is_punct('(') && toks[close].is_punct(')')).then_some(close)
}

/// Walk one function body collecting acquired-before edges.
fn walk_fn(ctx: &FileCtx, f: &crate::segment::FnItem, edges: &mut Vec<Edge>) {
    let toks = &ctx.toks;
    let (open, close) = f.body;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i <= close {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.temp || h.depth <= depth);
        } else if t.is_punct(';') {
            held.retain(|h| !h.temp);
        } else if t.is_ident("drop") {
            // `drop(g)` releases a named guard early.
            if let Some(o) = next_sig(toks, i + 1) {
                if toks[o].is_punct('(') {
                    if let Some(a) = next_sig(toks, o + 1) {
                        if toks[a].kind == TokKind::Ident {
                            let g = toks[a].text.clone();
                            held.retain(|h| h.guard.as_deref() != Some(g.as_str()));
                        }
                    }
                }
            }
        } else if let Some(cl) = acquisition(toks, i) {
            if let Some(recv) = receiver_name(toks, i) {
                for h in &held {
                    edges.push(Edge {
                        first: h.name.clone(),
                        second: recv.clone(),
                        file: ctx.rel.clone(),
                        line: t.line,
                        func: f.name.clone(),
                    });
                }
                // Persistent iff the statement is `let [mut] g = <recv
                // chain>.lock();` — `let` starts the statement and `;`
                // directly follows the call.
                let mut guard = None;
                let stmt_is_let = {
                    let mut j = i as isize - 1;
                    let mut d = 0i64;
                    loop {
                        if j < 0 {
                            break None;
                        }
                        let p = &toks[j as usize];
                        if p.is_comment() {
                            j -= 1;
                            continue;
                        }
                        if p.is_punct(')') || p.is_punct(']') {
                            d += 1;
                        } else if p.is_punct('(') || p.is_punct('[') {
                            d -= 1;
                        }
                        if d <= 0 && (p.is_punct(';') || p.is_punct('{') || p.is_punct('}')) {
                            break None;
                        }
                        if d == 0 && p.is_ident("let") {
                            break Some(j as usize);
                        }
                        j -= 1;
                    }
                };
                if let Some(l) = stmt_is_let {
                    if toks.get(cl + 1).is_some_and(|n| n.is_punct(';')) {
                        let mut n = next_sig(toks, l + 1);
                        if let Some(m) = n {
                            if toks[m].is_ident("mut") {
                                n = next_sig(toks, m + 1);
                            }
                        }
                        if let Some(g) = n {
                            if toks[g].kind == TokKind::Ident {
                                guard = Some(toks[g].text.clone());
                            }
                        }
                    }
                }
                let temp = guard.is_none();
                held.push(Held {
                    name: recv,
                    guard,
                    depth,
                    temp,
                });
                i = cl; // resume after the call's `()`
            }
        }
        i += 1;
    }
}

/// Run the rule across all files.
pub fn check(ctxs: &[FileCtx], findings: &mut Vec<Finding>) {
    let mut edges: Vec<Edge> = Vec::new();
    for ctx in ctxs {
        for f in &ctx.fns {
            if f.in_test {
                continue;
            }
            walk_fn(ctx, f, &mut edges);
        }
    }

    // Re-entrant same-lock acquisition is its own finding.
    for e in &edges {
        if e.first == e.second {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: "lock-order",
                msg: format!(
                    "re-entrant acquisition of `{}` while already held in `{}` \
                     (parking_lot deadlocks on re-lock)",
                    e.second, e.func
                ),
            });
        }
    }

    // Global order graph on distinct locks.
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        if e.first != e.second {
            graph.entry(&e.first).or_default().insert(&e.second);
        }
    }
    // DFS cycle detection; each cycle reported once, canonicalized by
    // rotating its smallest node first.
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = graph.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<&str> = vec![start];
        let mut path: Vec<&str> = Vec::new();
        dfs(start, &graph, &mut path, &mut stack, &mut seen_cycles);
    }
    for cycle in &seen_cycles {
        // Describe each edge in the cycle with one witness.
        let mut legs = Vec::new();
        let mut first_witness: Option<&Edge> = None;
        for w in 0..cycle.len() {
            let a = &cycle[w];
            let b = &cycle[(w + 1) % cycle.len()];
            if let Some(e) = edges.iter().find(|e| &e.first == a && &e.second == b) {
                legs.push(format!(
                    "`{a}` then `{b}` at {}:{} (fn {})",
                    e.file, e.line, e.func
                ));
                first_witness.get_or_insert(e);
            }
        }
        let Some(w) = first_witness else { continue };
        findings.push(Finding {
            file: w.file.clone(),
            line: w.line,
            rule: "lock-order",
            msg: format!(
                "lock-order cycle {{{}}}: {}",
                cycle.join(" -> "),
                legs.join("; ")
            ),
        });
    }
}

fn dfs<'a>(
    node: &'a str,
    graph: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    path: &mut Vec<&'a str>,
    _stack: &mut Vec<&'a str>,
    cycles: &mut BTreeSet<Vec<String>>,
) {
    if let Some(pos) = path.iter().position(|&n| n == node) {
        let cyc: Vec<&str> = path[pos..].to_vec();
        // Canonical rotation: smallest node first.
        let min = cyc
            .iter()
            .enumerate()
            .min_by_key(|(_, n)| **n)
            .map(|(i, _)| i);
        if let Some(mi) = min {
            let mut rot: Vec<String> = Vec::with_capacity(cyc.len());
            for k in 0..cyc.len() {
                rot.push(cyc[(mi + k) % cyc.len()].to_string());
            }
            cycles.insert(rot);
        }
        return;
    }
    path.push(node);
    if let Some(nexts) = graph.get(node) {
        for &n in nexts {
            dfs(n, graph, path, _stack, cycles);
        }
    }
    path.pop();
}

#[cfg(test)]
mod tests {
    use crate::analyze_files;

    fn run(files: &[(&str, &str)]) -> Vec<String> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        analyze_files(&owned)
            .into_iter()
            .filter(|f| f.rule == "lock-order")
            .map(|f| f.to_string())
            .collect()
    }

    #[test]
    fn opposite_nesting_orders_reported_with_both_witnesses() {
        let found = run(&[
            (
                "crates/core/src/a.rs",
                "fn f(s: &S) { let g = s.alpha.lock(); s.beta.lock().push(1); drop(g); }",
            ),
            (
                "crates/core/src/b.rs",
                "fn g(s: &S) { let g = s.beta.lock(); s.alpha.lock().push(1); drop(g); }",
            ),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("alpha -> beta") || found[0].contains("beta -> alpha"));
        assert!(found[0].contains("crates/core/src/a.rs:1"));
        assert!(found[0].contains("crates/core/src/b.rs:1"));
        assert!(found[0].contains("fn f") && found[0].contains("fn g"));
    }

    #[test]
    fn consistent_order_passes() {
        let found = run(&[
            (
                "crates/core/src/a.rs",
                "fn f(s: &S) { let g = s.alpha.lock(); s.beta.lock().push(1); }",
            ),
            (
                "crates/core/src/b.rs",
                "fn g(s: &S) { let g = s.alpha.lock(); s.beta.lock().push(2); }",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn dropped_guard_ends_nesting() {
        // `drop(g)` before the second lock: no overlap, no edge.
        let found = run(&[
            (
                "crates/core/src/a.rs",
                "fn f(s: &S) { let g = s.alpha.lock(); drop(g); s.beta.lock().push(1); }",
            ),
            (
                "crates/core/src/b.rs",
                "fn g(s: &S) { let g = s.beta.lock(); drop(g); s.alpha.lock().push(1); }",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn statement_temporary_released_at_semicolon() {
        // `x.lock().push(..);` holds only within its statement.
        let found = run(&[
            (
                "crates/core/src/a.rs",
                "fn f(s: &S) { s.alpha.lock().push(1); s.beta.lock().push(1); }",
            ),
            (
                "crates/core/src/b.rs",
                "fn g(s: &S) { s.beta.lock().push(1); s.alpha.lock().push(1); }",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn scope_exit_releases_let_guard() {
        let found = run(&[(
            "crates/core/src/a.rs",
            "fn f(s: &S) { { let g = s.alpha.lock(); } s.alpha.lock().push(1); }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn reentrant_same_lock_reported() {
        let found = run(&[(
            "crates/core/src/a.rs",
            "fn f(s: &S) { let g = s.alpha.lock(); s.alpha.lock().push(1); }",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("re-entrant"));
    }

    #[test]
    fn three_cycle_reported_once() {
        let found = run(&[(
            "crates/core/src/a.rs",
            "fn f(s: &S) { let g = s.alpha.lock(); s.beta.lock().push(1); }\n\
                 fn g(s: &S) { let g = s.beta.lock(); s.gamma.lock().push(1); }\n\
                 fn h(s: &S) { let g = s.gamma.lock(); s.alpha.lock().push(1); }",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("alpha -> beta -> gamma"));
    }

    #[test]
    fn test_code_excluded() {
        let found = run(&[(
            "crates/core/src/a.rs",
            "#[cfg(test)]\nmod tests {\n\
             fn f(s: &S) { let g = s.alpha.lock(); s.beta.lock().push(1); }\n\
             fn g(s: &S) { let g = s.beta.lock(); s.alpha.lock().push(1); }\n}",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }
}
