//! `unsafe-hygiene`: every `unsafe` block, fn, impl, and trait must be
//! preceded by a `// SAFETY:` comment.
//!
//! Why: the workspace policy is that `px-poll` is the *single* audited
//! unsafe boundary (every other product crate carries
//! `#![forbid(unsafe_code)]`). An audit is only as good as its notes — an
//! `unsafe` whose soundness argument lives in someone's head rots the
//! moment the surrounding code changes. The rule accepts a `SAFETY:`
//! comment ending at most [`MAX_GAP`] lines above the `unsafe` token (or
//! trailing on the same line), so the argument stays adjacent to the
//! obligation.

use crate::{FileCtx, Finding};

/// How many lines above the `unsafe` token the end of the SAFETY comment
/// may sit. 3 allows an attribute or an `#[allow]` between comment and
/// item without letting the comment drift out of view.
pub const MAX_GAP: u32 = 3;

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    // End lines of comment runs containing "SAFETY:". Consecutive line
    // comments coalesce into one run (a wrapped SAFETY argument counts
    // from its *last* line), so a long soundness note doesn't push its
    // own `SAFETY:` prefix out of the adjacency window.
    let comments: Vec<(u32, u32, bool)> = ctx
        .toks
        .iter()
        .filter(|t| t.is_comment())
        .map(|t| {
            let end = t.line + t.text.matches('\n').count() as u32;
            (t.line, end, t.text.contains("SAFETY:"))
        })
        .collect();
    let mut safety_lines: Vec<u32> = Vec::new();
    let mut i = 0usize;
    while i < comments.len() {
        let (_, mut end, mut has) = comments[i];
        let mut j = i + 1;
        while j < comments.len() && comments[j].0 <= end + 1 {
            end = end.max(comments[j].1);
            has |= comments[j].2;
            j += 1;
        }
        if has {
            safety_lines.push(end);
        }
        i = j;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let line = t.line;
        let covered = safety_lines
            .iter()
            .any(|&c| c <= line && line - c <= MAX_GAP);
        if !covered {
            let what = match crate::segment::next_sig(&ctx.toks, i + 1) {
                Some(n) if ctx.toks[n].is_ident("impl") => "unsafe impl",
                Some(n) if ctx.toks[n].is_ident("fn") => "unsafe fn",
                Some(n) if ctx.toks[n].is_ident("trait") => "unsafe trait",
                _ => "unsafe block",
            };
            findings.push(Finding {
                file: ctx.rel.clone(),
                line,
                rule: "unsafe-hygiene",
                msg: format!(
                    "{what} without an adjacent `// SAFETY:` comment (within {MAX_GAP} lines)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_files;

    fn run(src: &str) -> Vec<String> {
        analyze_files(&[("crates/poll/src/lib.rs".into(), src.into())])
            .into_iter()
            .filter(|f| f.rule == "unsafe-hygiene")
            .map(|f| f.to_string())
            .collect()
    }

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let found = run("fn f() { let x = unsafe { g() }; }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("unsafe block"));
        let found = run("unsafe impl Send for P {}");
        assert!(found[0].contains("unsafe impl"));
        let found = run("unsafe fn g() {}");
        assert!(found[0].contains("unsafe fn"));
    }

    #[test]
    fn documented_unsafe_passes() {
        assert!(run("// SAFETY: fd is owned and open.\nfn f() { unsafe { g() }; }").is_empty());
        // Trailing on the same line.
        assert!(run("fn f() { unsafe { g() } } // SAFETY: trailing").is_empty());
        // Multi-line comment run ending adjacent.
        assert!(
            run("// SAFETY: long argument\n// continuing here.\nunsafe impl Send for P {}")
                .is_empty()
        );
        // A wrapped SAFETY note longer than the gap window still counts:
        // the run's *end* line anchors the adjacency check.
        assert!(run(
            "// SAFETY: a long argument\n// line two\n// line three\n// line four\n\
             unsafe impl Send for P {}\nunsafe impl Sync for P {}"
        )
        .is_empty());
    }

    #[test]
    fn stale_comment_too_far_above_does_not_count() {
        let src = "// SAFETY: ancient note\n\n\n\n\nfn f() { unsafe { g() } }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn unsafe_in_strings_and_comments_ignored() {
        assert!(run(r#"fn f() { let s = "unsafe { }"; } // not real unsafe"#).is_empty());
        assert!(run("// this mentions unsafe code\nfn f() {}").is_empty());
    }
}
