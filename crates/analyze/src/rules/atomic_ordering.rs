//! `atomic-ordering`: `Ordering::Relaxed` is allowed only on counter
//! fields (allowlisted below) or with an adjacent justification comment;
//! the `TraceRing` seqlock's Acquire/Release pairing is checked
//! structurally.
//!
//! Why: `Relaxed` is correct for statistics — a counter bumped here and
//! summed later needs atomicity, not ordering — and wrong nearly
//! everywhere else, where it silently removes the happens-before edge a
//! reader depends on. The failure mode is a rare hang or a torn
//! observation under load, exactly the class of bug the split-phase
//! runtime cannot afford. So: counters pass by name, everything else
//! must say *why* relaxed is enough, in a comment the next reader (and
//! this rule) can see.
//!
//! The seqlock check exists because `TraceRing` is the one place where
//! the workspace hand-rolls a publication protocol out of raw atomics:
//! writers claim a slot (`compare_exchange` Acquire), publish with a
//! `Release` store of the even sequence, and readers validate with an
//! `Acquire` load plus an `Acquire` fence before the re-read. Weakening
//! any leg keeps every test passing on x86 and loses events on ARM; the
//! rule pins the shape so a refactor cannot drop a leg unnoticed.

use crate::segment::{matching_brace, next_sig, receiver_name};
use crate::{FileCtx, Finding};
use std::collections::{HashMap, HashSet};

/// Atomic methods whose ordering arguments this rule audits.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Counter fields allowed to use `Relaxed` without a per-site comment,
/// *beyond* the automatically allowlisted fields of `struct *Counters`
/// items. Every entry is a monotonic statistic: incremented in one
/// place, read for reporting, no reader decision depends on ordering
/// against other memory.
const EXTRA_COUNTERS: &[&str] = &[
    // RuntimeInner process bookkeeping (reported via StatsSnapshot).
    "processes_created",
    "processes_cancelled",
    "processes_reaped",
    // TraceState sampler/allocator tickets (uniqueness, not ordering).
    "seen",
    "next",
    // TraceRing recording-order ticket (slot claim provides ordering).
    "cursor",
    // Balancer spawn-diffusion round-robin ticket.
    "spawn_seq",
];

/// Collect the allowlist: every field declared `: AtomicU64`/`AtomicUsize`
/// inside a `struct` whose name ends in `Counters`, across all files.
fn counter_fields(ctxs: &[FileCtx]) -> HashSet<String> {
    let mut out: HashSet<String> = EXTRA_COUNTERS.iter().map(|s| s.to_string()).collect();
    for ctx in ctxs {
        let toks = &ctx.toks;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_ident("struct") {
                if let Some(n) = next_sig(toks, i + 1) {
                    if toks[n].kind == crate::lexer::TokKind::Ident
                        && toks[n].text.ends_with("Counters")
                    {
                        if let Some(open) = (n + 1..toks.len()).find(|&j| toks[j].is_punct('{')) {
                            let close = matching_brace(toks, open);
                            let mut j = open + 1;
                            while j + 2 < close {
                                if toks[j].kind == crate::lexer::TokKind::Ident
                                    && toks[j + 1].is_punct(':')
                                    && toks[j + 2].kind == crate::lexer::TokKind::Ident
                                    && toks[j + 2].text.starts_with("Atomic")
                                {
                                    out.insert(toks[j].text.clone());
                                }
                                j += 1;
                            }
                            i = close;
                        }
                    }
                }
            }
            i += 1;
        }
    }
    out
}

/// Run the rule over one file (`ctxs` supplies the cross-file allowlist).
pub fn check(ctx: &FileCtx, ctxs: &[FileCtx], findings: &mut Vec<Finding>) {
    let allow = counter_fields(ctxs);
    let toks = &ctx.toks;

    // Line-adjacency maps for the justification scan.
    let mut relaxed_lines: HashSet<u32> = HashSet::new();
    let mut token_lines: HashSet<u32> = HashSet::new();
    let mut code_lines: HashSet<u32> = HashSet::new(); // non-comment tokens
    let mut comment_lines: HashMap<u32, bool> = HashMap::new(); // line -> mentions relaxed
    for t in toks {
        token_lines.insert(t.line);
        if t.is_comment() {
            let end = t.line + t.text.matches('\n').count() as u32;
            let mentions = t.text.to_ascii_lowercase().contains("relaxed");
            for l in t.line..=end {
                token_lines.insert(l);
                let e = comment_lines.entry(l).or_insert(false);
                *e |= mentions;
            }
        } else {
            code_lines.insert(t.line);
        }
        if t.is_ident("Relaxed") {
            relaxed_lines.insert(t.line);
        }
    }
    let justified = |line: u32| -> bool {
        // Trailing comment on the same line.
        if comment_lines.get(&line).copied().unwrap_or(false) {
            return true;
        }
        // A comment ending above, with only Relaxed-bearing lines,
        // comments, or blank lines in between (so one comment covers a
        // contiguous run of Relaxed operations). A run of own-line
        // comment lines is one justification block: any of its lines
        // may carry the "relaxed" mention.
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if let Some(&mentions) = comment_lines.get(&l) {
                if code_lines.contains(&l) {
                    // Trailing comment on a code line: stands alone.
                    return mentions;
                }
                // Walk the contiguous own-line comment block upward.
                loop {
                    match comment_lines.get(&l) {
                        Some(&m) if !code_lines.contains(&l) => {
                            if m {
                                return true;
                            }
                            if l == 1 {
                                return false;
                            }
                            l -= 1;
                        }
                        _ => return false,
                    }
                }
            }
            let blank = !token_lines.contains(&l);
            if !(blank || relaxed_lines.contains(&l)) {
                return false;
            }
            l -= 1;
        }
        false
    };

    for i in 0..toks.len() {
        if !toks[i].is_ident("Relaxed") || ctx.in_test(i) {
            continue;
        }
        // Must be the tail of `Ordering::Relaxed`.
        let is_path = i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("Ordering");
        if !is_path {
            continue;
        }
        // Locate the enclosing call: walk back to the unbalanced `(`.
        let mut depth = 0i64;
        let mut j = i as isize - 4;
        let mut call_open: Option<usize> = None;
        while j >= 0 {
            let t = &toks[j as usize];
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                if depth == 0 {
                    call_open = Some(j as usize);
                    break;
                }
                depth -= 1;
            } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            j -= 1;
        }
        let site = toks[i].line;
        let (method, receiver) = match call_open {
            Some(open) => {
                let m = crate::segment::prev_sig(toks, open.saturating_sub(1));
                match m {
                    Some(m)
                        if toks[m].kind == crate::lexer::TokKind::Ident
                            && ATOMIC_METHODS.contains(&toks[m].text.as_str()) =>
                    {
                        (toks[m].text.clone(), receiver_name(toks, m))
                    }
                    _ => (String::new(), None),
                }
            }
            None => (String::new(), None),
        };
        if let Some(recv) = &receiver {
            if allow.contains(recv) {
                continue;
            }
        }
        if justified(site) {
            continue;
        }
        let what = match (&receiver, method.is_empty()) {
            (Some(r), false) => format!("`{r}.{method}(Ordering::Relaxed)`"),
            (None, false) => format!("`.{method}(Ordering::Relaxed)`"),
            _ => "`Ordering::Relaxed`".to_string(),
        };
        findings.push(Finding {
            file: ctx.rel.clone(),
            line: site,
            rule: "atomic-ordering",
            msg: format!(
                "{what} outside the counter allowlist needs an adjacent \
                 justification comment mentioning \"relaxed\""
            ),
        });
    }

    // ---- TraceRing seqlock structural check -------------------------------
    if ctx.rel.ends_with("core/src/trace.rs") {
        check_trace_ring(ctx, findings);
    }
}

/// The structural seqlock legs (see module docs). Missing legs are
/// reported at the `impl TraceRing` line.
fn check_trace_ring(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let Some(imp) = crate::segment::impls(toks)
        .into_iter()
        .find(|i| i.type_name == "TraceRing" && i.trait_name.is_none())
    else {
        findings.push(Finding {
            file: ctx.rel.clone(),
            line: 1,
            rule: "atomic-ordering",
            msg: "no `impl TraceRing` found: the seqlock structural check has lost its subject"
                .into(),
        });
        return;
    };
    let impl_line = toks[imp.body.0].line;
    let (open, close) = imp.body;
    let mut claim_acquire = false;
    let mut publish_release = false;
    let mut load_acquire = false;
    let mut acquire_fence = false;
    for i in open..=close {
        let t = &toks[i];
        if t.kind != crate::lexer::TokKind::Ident {
            continue;
        }
        // `fence(Ordering::Acquire)` anywhere in the impl.
        if t.text == "fence" {
            if let Some(ords) = call_orderings(toks, i) {
                if ords.first().is_some_and(|o| o == "Acquire") {
                    acquire_fence = true;
                }
            }
            continue;
        }
        if !ATOMIC_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if receiver_name(toks, i).as_deref() != Some("seq") {
            continue;
        }
        let Some(ords) = call_orderings(toks, i) else {
            continue;
        };
        match t.text.as_str() {
            "compare_exchange" | "compare_exchange_weak"
                if ords.first().is_some_and(|o| o == "Acquire") =>
            {
                claim_acquire = true;
            }
            "store" => {
                if ords.first().is_some_and(|o| o == "Release") {
                    publish_release = true;
                } else {
                    findings.push(Finding {
                        file: ctx.rel.clone(),
                        line: t.line,
                        rule: "atomic-ordering",
                        msg: format!(
                            "TraceRing seqlock: `seq.store` must publish with Release, found {:?}",
                            ords
                        ),
                    });
                }
            }
            // A Relaxed validation re-load is sound *only* under the
            // Acquire fence, which is checked below; only the Acquire
            // reader entry counts as a leg.
            "load" if ords.first().is_some_and(|o| o == "Acquire") => {
                load_acquire = true;
            }
            m if m.starts_with("fetch_") || m == "swap" => {
                findings.push(Finding {
                    file: ctx.rel.clone(),
                    line: t.line,
                    rule: "atomic-ordering",
                    msg: format!(
                        "TraceRing seqlock: unexpected `seq.{m}` — slot sequences are \
                         claimed by compare_exchange and published by store only"
                    ),
                });
            }
            _ => {}
        }
    }
    let legs: &[(bool, &str)] = &[
        (
            claim_acquire,
            "no `seq.compare_exchange(.., Acquire, ..)` slot claim",
        ),
        (publish_release, "no `seq.store(.., Release)` publication"),
        (load_acquire, "no `seq.load(Acquire)` reader entry"),
        (
            acquire_fence,
            "no `fence(Ordering::Acquire)` between data reads and seq validation",
        ),
    ];
    for (ok, msg) in legs {
        if !ok {
            findings.push(Finding {
                file: ctx.rel.clone(),
                line: impl_line,
                rule: "atomic-ordering",
                msg: format!("TraceRing seqlock pairing broken: {msg}"),
            });
        }
    }
}

/// The `Ordering::X` idents inside the argument list of the call whose
/// method ident is at `m_idx`, in order.
fn call_orderings(toks: &[crate::lexer::Token], m_idx: usize) -> Option<Vec<String>> {
    let open = next_sig(toks, m_idx + 1)?;
    if !toks[open].is_punct('(') {
        return None;
    }
    let mut depth = 0i64;
    let mut out = Vec::new();
    for i in open..toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(out);
            }
        } else if t.is_ident("Ordering")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
        {
            if let Some(o) = toks.get(i + 3) {
                out.push(o.text.clone());
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use crate::analyze_files;

    fn run(src: &str) -> Vec<String> {
        analyze_files(&[("crates/core/src/x.rs".into(), src.into())])
            .into_iter()
            .filter(|f| f.rule == "atomic-ordering")
            .map(|f| f.to_string())
            .collect()
    }

    #[test]
    fn unjustified_relaxed_flagged() {
        let found = run("fn f(a: &AtomicBool) { a.store(true, Ordering::Relaxed); }");
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].contains("a.store"));
    }

    #[test]
    fn counter_struct_fields_allowlisted() {
        let src = "\
struct FooCounters { pub parcels_sent: AtomicU64 }
fn f(c: &FooCounters) { c.parcels_sent.fetch_add(1, Ordering::Relaxed); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn adjacent_justification_accepted() {
        let src = "\
fn f(a: &AtomicU64) {
    // Relaxed: monotonic ticket, no ordering consumed.
    a.fetch_add(1, Ordering::Relaxed);
}";
        assert!(run(src).is_empty());
        // One comment covers a contiguous run of Relaxed lines.
        let src = "\
fn f(a: &AtomicU64, b: &AtomicU64) {
    // Relaxed: snapshot loads, torn totals acceptable.
    let x = a.load(Ordering::Relaxed);
    let y = b.load(Ordering::Relaxed);
    drop((x, y));
}";
        assert!(run(src).is_empty());
        // A non-Relaxed statement breaks the covered run.
        let src = "\
fn f(a: &AtomicU64, b: &AtomicU64) {
    // Relaxed: only covers x.
    let x = a.load(Ordering::Relaxed);
    let q = 1 + 1;
    let y = b.load(Ordering::Relaxed);
    drop((x, q, y));
}";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn multi_line_justification_accepted() {
        // A wrapped comment is one justification block even when the
        // "Relaxed" mention is not on its last line.
        let src = "\
fn f(a: &AtomicU64) {
    // Relaxed: a monotonic tally; the guard release below is what
    // publishes it to readers.
    a.fetch_add(1, Ordering::Relaxed);
}";
        assert!(run(src).is_empty(), "{:?}", run(src));
        // An unrelated trailing comment on the preceding code line does
        // not chain upward to borrow someone else's justification.
        let src = "\
fn f(a: &AtomicU64) {
    // Relaxed: covers only the run directly below.
    let q = compute(); // setup note
    a.fetch_add(1, Ordering::Relaxed);
    drop(q);
}";
        assert_eq!(run(src).len(), 1, "{:?}", run(src));
    }

    #[test]
    fn acquire_release_untouched() {
        assert!(run("fn f(a: &AtomicBool) { a.store(true, Ordering::Release); }").is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t(a: &AtomicU64) { a.load(Ordering::Relaxed); } }";
        assert!(run(src).is_empty());
    }

    // ---- seqlock structural fixtures ----------------------------------

    fn run_trace(src: &str) -> Vec<String> {
        analyze_files(&[("crates/core/src/trace.rs".into(), src.into())])
            .into_iter()
            .filter(|f| f.rule == "atomic-ordering")
            .map(|f| f.msg)
            .collect()
    }

    /// A minimal, correctly paired seqlock skeleton.
    const GOOD_RING: &str = "\
impl TraceRing {
    fn record(&self, s: &Slot) {
        // Relaxed: ticket only; the claim CAS below orders the write.
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        let seq0 = s.seq.load(Ordering::Acquire);
        // Relaxed failure ordering: a lost claim race means drop, not read.
        if s.seq.compare_exchange(seq0, seq0 + 1, Ordering::Acquire, Ordering::Relaxed).is_err() {
            return;
        }
        // Relaxed: data words ordered by the Release publication below.
        s.words[0].store(n, Ordering::Relaxed);
        s.seq.store(seq0 + 2, Ordering::Release);
    }
    fn snapshot(&self, s: &Slot) -> u64 {
        let s1 = s.seq.load(Ordering::Acquire);
        // Relaxed: the Acquire fence below orders these reads.
        let w = s.words[0].load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        // Relaxed: validation load; the fence provides the edge.
        let s2 = s.seq.load(Ordering::Relaxed);
        if s1 == s2 { w } else { 0 }
    }
}";

    #[test]
    fn wellformed_seqlock_passes() {
        let found = run_trace(GOOD_RING);
        assert!(found.is_empty(), "{found:?}");
    }

    /// Regression fixtures: deleting any leg of the protocol is caught.
    #[test]
    fn seqlock_broken_legs_caught() {
        // Publication weakened to Relaxed.
        let bad = GOOD_RING.replace(
            "s.seq.store(seq0 + 2, Ordering::Release)",
            "s.seq.store(seq0 + 2, Ordering::Relaxed)",
        );
        let found = run_trace(&bad);
        assert!(
            found
                .iter()
                .any(|m| m.contains("must publish with Release")),
            "{found:?}"
        );
        // Reader entry weakened.
        let bad = GOOD_RING.replace(
            "s.seq.load(Ordering::Acquire)",
            "s.seq.load(Ordering::Relaxed)",
        );
        let found = run_trace(&bad);
        assert!(
            found.iter().any(|m| m.contains("reader entry")),
            "{found:?}"
        );
        // Fence dropped.
        let bad = GOOD_RING.replace("std::sync::atomic::fence(Ordering::Acquire);", "");
        let found = run_trace(&bad);
        assert!(found.iter().any(|m| m.contains("fence")), "{found:?}");
        // Claim CAS replaced by a blind fetch_add.
        let bad = GOOD_RING.replace(
            "if s.seq.compare_exchange(seq0, seq0 + 1, Ordering::Acquire, Ordering::Relaxed).is_err() {\n            return;\n        }",
            "s.seq.fetch_add(1, Ordering::AcqRel);",
        );
        let found = run_trace(&bad);
        assert!(
            found.iter().any(|m| m.contains("compare_exchange")),
            "{found:?}"
        );
        // No impl at all.
        let found = run_trace("fn unrelated() {}");
        assert!(found.iter().any(|m| m.contains("lost its subject")));
    }
}
