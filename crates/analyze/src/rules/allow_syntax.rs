//! `allow-syntax`: every `px-analyze` suppression comment must parse,
//! name a real rule, and carry a justification.
//!
//! Why: a suppression that silently fails to parse is worse than no
//! suppression (the author believes the line is covered), and a
//! justification-free allow defeats the audit trail the whole tool
//! exists to build. This meta-rule turns both mistakes into findings, so
//! the only way to quiet the checker is a well-formed, explained,
//! line-level allow.

use crate::{is_doc_comment, parse_allow_comment, FileCtx, Finding, RULE_IDS};

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, findings: &mut Vec<Finding>) {
    for t in &ctx.toks {
        if !t.is_comment() || is_doc_comment(&t.text) {
            continue;
        }
        // Only comments *attempting* the allow syntax are checked: prose
        // mentioning the tool (docs, this file) is not a suppression.
        let Some(at) = t.text.find("px-analyze:") else {
            continue;
        };
        if !t.text[at + "px-analyze:".len()..]
            .trim_start()
            .starts_with("allow")
        {
            continue;
        }
        let msg = match parse_allow_comment(&t.text) {
            None => Some(
                "malformed suppression: expected `px-analyze: allow(rule-id): justification`"
                    .to_string(),
            ),
            Some((rule, _)) if !RULE_IDS.contains(&rule.as_str()) => {
                Some(format!("unknown rule id `{rule}` in allow"))
            }
            Some((_, why)) if why.is_empty() => {
                Some("allow without a justification after the colon".to_string())
            }
            Some(_) => None,
        };
        if let Some(msg) = msg {
            findings.push(Finding {
                file: ctx.rel.clone(),
                line: t.line,
                rule: "allow-syntax",
                msg,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_files;

    fn run(src: &str) -> Vec<String> {
        analyze_files(&[("crates/core/src/x.rs".into(), src.into())])
            .into_iter()
            .filter(|f| f.rule == "allow-syntax")
            .map(|f| f.msg)
            .collect()
    }

    #[test]
    fn malformed_allows_flagged() {
        assert_eq!(run("// px-analyze: allow(lock-order)").len(), 1);
        assert_eq!(run("// px-analyze: allow(not-a-rule): because").len(), 1);
        assert_eq!(run("// px-analyze: allowlock-order: x").len(), 1);
        assert_eq!(run("// px-analyze: allow(lock-order):").len(), 1);
    }

    #[test]
    fn wellformed_allow_passes() {
        assert!(run("// px-analyze: allow(lock-order): B is only taken read-side here").is_empty());
    }

    // Regression note (ISSUE 8): this comment itself mentions px-analyze
    // in prose without being an allow — prose must not be flagged, only
    // comments that *attempt* the allow syntax and fail. The parser keys
    // on the `px-analyze:` prefix with `allow(` following.
    #[test]
    fn prose_mentioning_the_tool_passes() {
        assert!(run("// run px-analyze before committing").is_empty());
    }

    // Docs may show the syntax as an example without it being a (possibly
    // malformed) live suppression — only plain `//` comments count.
    #[test]
    fn doc_comments_showing_the_syntax_pass() {
        assert!(run("/// Write `// px-analyze: allow(rule-id): why` on the line.").is_empty());
        assert!(run("//! px-analyze: allow(rule-id): placeholder example").is_empty());
    }
}
