//! The rule set. Each module exposes `check(...)` pushing [`Finding`]s;
//! see the crate docs for the invariant each rule guards.
//!
//! [`Finding`]: crate::Finding

pub mod allow_syntax;
pub mod atomic_ordering;
pub mod guard_unwrap;
pub mod lock_order;
pub mod silent_loss;
pub mod unsafe_hygiene;
pub mod wire_stats;
