//! `px-analyze` binary: run the workspace invariant checker and exit
//! non-zero on findings. CI runs `cargo run -p px-analyze --release --
//! --workspace`; locally, run it from anywhere inside the repo.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            // The default; kept explicit so the CI invocation documents
            // its scope.
            "--workspace" => {}
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("px-analyze: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "px-analyze [--workspace] [--root <dir>]\n\
                     Checks the workspace against the parallex invariant rules\n\
                     (lock-order, unsafe-hygiene, atomic-ordering, no-silent-loss,\n\
                     wire-stats, guard-unwrap, allow-syntax); see crates/analyze."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("px-analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match px_analyze::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("px-analyze: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    run(&root)
}

fn run(root: &Path) -> ExitCode {
    match px_analyze::analyze_workspace(root) {
        Ok(findings) if findings.is_empty() => {
            println!("px-analyze: 0 findings");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("px-analyze: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("px-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
