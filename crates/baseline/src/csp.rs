//! Ranks, blocking message passing, barriers, and the remote store.

use crossbeam::channel::{bounded, Receiver};
use parking_lot::{Condvar, Mutex, RwLock};
use px_core::net::{DelayLine, WireModel};
use serde::{de::DeserializeOwned, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Reserved tag space: user tags must stay below this.
pub const SYS_TAG_BASE: u32 = 0xffff_0000;
/// Barrier arrival/release tag.
pub const TAG_BARRIER: u32 = SYS_TAG_BASE;
/// Remote-store request tag.
pub const TAG_STORE_REQ: u32 = SYS_TAG_BASE + 1;
/// Remote-store reply tag.
pub const TAG_STORE_REP: u32 = SYS_TAG_BASE + 2;
/// Collective reduction tag.
pub const TAG_REDUCE: u32 = SYS_TAG_BASE + 3;

/// A message in a rank's mailbox.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender rank.
    pub from: usize,
    /// User or system tag.
    pub tag: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Blocking mailbox with `(from, tag)` matching (MPI-style out-of-order
/// matching: a recv takes the oldest message satisfying the filter).
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    fn deliver(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push_back(env);
        self.cv.notify_all();
    }

    /// Blocking matched receive.
    fn recv(&self, from: Option<usize>, tag: u32) -> Envelope {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q
                .iter()
                .position(|e| e.tag == tag && from.is_none_or(|f| e.from == f))
            {
                return q.remove(pos).expect("position valid");
            }
            self.cv.wait(&mut q);
        }
    }

    /// Non-blocking matched receive.
    fn try_recv(&self, from: Option<usize>, tag: u32) -> Option<Envelope> {
        let mut q = self.queue.lock();
        q.iter()
            .position(|e| e.tag == tag && from.is_none_or(|f| e.from == f))
            .and_then(|pos| q.remove(pos))
    }
}

struct Routed {
    to: usize,
    env: Envelope,
}

/// Shared world state.
pub struct WorldInner {
    mailboxes: Vec<Arc<Mailbox>>,
    line: DelayLine<Routed>,
    /// Per-rank remote-store shards: key → bytes.
    store: Vec<RwLock<std::collections::HashMap<u64, Vec<u8>>>>,
    /// Messages sent (diagnostics).
    pub messages: AtomicU64,
    /// Bytes sent (diagnostics).
    pub bytes: AtomicU64,
    model: WireModel,
}

impl WorldInner {
    fn send_env(&self, to: usize, env: Envelope) {
        // Relaxed: diagnostic tally, read after the world quiesces.
        self.messages.fetch_add(1, Ordering::Relaxed);
        let size = env.payload.len() + 16; // header estimate, matches parcels
        self.bytes.fetch_add(size as u64, Ordering::Relaxed); // Relaxed: as above
        self.line.send(Routed { to, env }, size);
    }
}

/// The CSP world: `n` ranks with a shared wire.
pub struct World;

impl World {
    /// Run `f` on `n` ranks (one OS thread each) over `model`, returning
    /// each rank's result ordered by rank id. Also boots a responder
    /// thread serving remote-store requests at zero owner cost.
    pub fn run<T, F>(n: usize, model: WireModel, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Rank) -> T + Send + Sync + 'static,
    {
        assert!(n >= 1);
        let mailboxes: Vec<Arc<Mailbox>> = (0..n).map(|_| Arc::new(Mailbox::default())).collect();
        // Responder channel: store requests are diverted to the responder
        // thread instead of the rank mailbox.
        let (req_tx, req_rx) = bounded::<Envelope>(65536);
        let sink_mailboxes = mailboxes.clone();
        let sink: Arc<dyn Fn(Routed) + Send + Sync> = Arc::new(move |r| {
            if r.env.tag == TAG_STORE_REQ {
                let _ = req_tx.send(Envelope {
                    from: r.env.from,
                    // Route the owner rank through the tag field of the
                    // diverted envelope: responder needs (owner, requester).
                    tag: r.to as u32,
                    payload: r.env.payload,
                });
            } else {
                sink_mailboxes[r.to].deliver(r.env);
            }
        });
        let inner = Arc::new(WorldInner {
            mailboxes,
            line: DelayLine::new(model, sink),
            store: (0..n).map(|_| RwLock::new(Default::default())).collect(),
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            model,
        });

        // Responder thread: serves GET requests, paying wire costs on the
        // reply but no rank compute (generous to the baseline). It holds
        // only a Weak reference — a strong one would keep the delay line
        // (and therefore its own request channel) alive forever.
        let responder_inner = Arc::downgrade(&inner);
        let responder = std::thread::Builder::new()
            .name("csp-responder".into())
            .spawn(move || responder_loop(req_rx, responder_inner))
            .expect("spawn responder");

        let f = Arc::new(f);
        let handles: Vec<_> = (0..n)
            .map(|id| {
                let inner = inner.clone();
                let f = f.clone();
                std::thread::Builder::new()
                    .name(format!("csp-rank-{id}"))
                    .spawn(move || f(Rank { id, inner }))
                    .expect("spawn rank")
            })
            .collect();
        let results = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Preserve the original panic payload for the caller.
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect();
        // Ranks done: drop the world's delay line by dropping inner refs.
        drop(inner);
        let _ = responder.join();
        results
    }
}

fn responder_loop(rx: Receiver<Envelope>, inner: std::sync::Weak<WorldInner>) {
    // Exits when all senders disconnect (delay line dropped) or the world
    // is gone.
    while let Ok(env) = rx.recv() {
        let Some(inner) = inner.upgrade() else {
            return;
        };
        let owner = env.tag as usize;
        let requester = env.from;
        let key = u64::from_le_bytes(env.payload[..8].try_into().unwrap());
        let value = inner.store[owner]
            .read()
            .get(&key)
            .cloned()
            .unwrap_or_default();
        inner.send_env(
            requester,
            Envelope {
                from: owner,
                tag: TAG_STORE_REP,
                payload: value,
            },
        );
    }
}

/// One CSP rank: a sequential process with blocking message passing.
pub struct Rank {
    id: usize,
    inner: Arc<WorldInner>,
}

impl Rank {
    /// This rank's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of ranks.
    pub fn world_size(&self) -> usize {
        self.inner.mailboxes.len()
    }

    /// The wire model in force.
    pub fn model(&self) -> WireModel {
        self.inner.model
    }

    /// Eager (buffered) send of raw bytes.
    pub fn send(&mut self, to: usize, tag: u32, payload: Vec<u8>) {
        assert!(tag < SYS_TAG_BASE, "tag {tag:#x} is reserved");
        self.inner.send_env(
            to,
            Envelope {
                from: self.id,
                tag,
                payload,
            },
        );
    }

    /// Blocking matched receive of raw bytes.
    pub fn recv(&mut self, from: Option<usize>, tag: u32) -> (usize, Vec<u8>) {
        let env = self.inner.mailboxes[self.id].recv(from, tag);
        (env.from, env.payload)
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self, from: Option<usize>, tag: u32) -> Option<(usize, Vec<u8>)> {
        self.inner.mailboxes[self.id]
            .try_recv(from, tag)
            .map(|e| (e.from, e.payload))
    }

    /// Typed send via the wire format.
    pub fn send_t<T: Serialize>(
        &mut self,
        to: usize,
        tag: u32,
        v: &T,
    ) -> Result<(), px_wire::WireError> {
        let bytes = px_wire::to_bytes(v)?;
        self.send(to, tag, bytes);
        Ok(())
    }

    /// Crate-internal typed send allowed to use reserved tags (collectives).
    pub(crate) fn send_sys_t<T: Serialize>(
        &mut self,
        to: usize,
        tag: u32,
        v: &T,
    ) -> Result<(), px_wire::WireError> {
        let bytes = px_wire::to_bytes(v)?;
        self.inner.send_env(
            to,
            Envelope {
                from: self.id,
                tag,
                payload: bytes,
            },
        );
        Ok(())
    }

    /// Typed receive.
    pub fn recv_t<T: DeserializeOwned>(
        &mut self,
        from: Option<usize>,
        tag: u32,
    ) -> Result<(usize, T), px_wire::WireError> {
        let (f, bytes) = self.recv(from, tag);
        Ok((f, px_wire::from_bytes(&bytes)?))
    }

    /// Global barrier: gather-to-root then broadcast, each leg paying wire
    /// latency — the cost §2.2 says LCOs avoid.
    pub fn barrier(&mut self) {
        let n = self.world_size();
        if n == 1 {
            return;
        }
        if self.id == 0 {
            for _ in 1..n {
                self.inner.mailboxes[0].recv(None, TAG_BARRIER);
            }
            for r in 1..n {
                self.inner.send_env(
                    r,
                    Envelope {
                        from: 0,
                        tag: TAG_BARRIER,
                        payload: Vec::new(),
                    },
                );
            }
        } else {
            self.inner.send_env(
                0,
                Envelope {
                    from: self.id,
                    tag: TAG_BARRIER,
                    payload: Vec::new(),
                },
            );
            self.inner.mailboxes[self.id].recv(Some(0), TAG_BARRIER);
        }
    }

    // ---- remote store (RDMA-ish; generous to the baseline) ---------------

    /// Put a value into this rank's store shard (local, free).
    pub fn store_put(&mut self, key: u64, value: Vec<u8>) {
        self.inner.store[self.id].write().insert(key, value);
    }

    /// Blocking remote get: request + reply, each paying the wire. The
    /// owner rank spends no compute (a dedicated responder serves it).
    pub fn store_get(&mut self, owner: usize, key: u64) -> Vec<u8> {
        self.inner.send_env(
            owner,
            Envelope {
                from: self.id,
                tag: TAG_STORE_REQ,
                payload: key.to_le_bytes().to_vec(),
            },
        );
        let env = self.inner.mailboxes[self.id].recv(Some(owner), TAG_STORE_REP);
        env.payload
    }

    /// Direct (unmeasured) store write to any shard — setup/verification
    /// only, not part of timed sections.
    pub fn store_put_at(&mut self, owner: usize, key: u64, value: Vec<u8>) {
        self.inner.store[owner].write().insert(key, value);
    }

    /// Messages sent world-wide so far.
    pub fn world_messages(&self) -> u64 {
        // Relaxed: counter read for reporting, not synchronization.
        self.inner.messages.load(Ordering::Relaxed)
    }

    /// Sleep helper for tests.
    pub fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange() {
        let out = World::run(4, WireModel::instant(), |mut r| {
            let right = (r.id() + 1) % r.world_size();
            r.send_t(right, 1, &(r.id() as u32)).unwrap();
            let (_, v): (usize, u32) = r.recv_t(None, 1).unwrap();
            v
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = World::run(2, WireModel::instant(), |mut r| {
            if r.id() == 0 {
                r.send_t(1, 7, &7u8).unwrap();
                r.send_t(1, 8, &8u8).unwrap();
                0
            } else {
                // Receive tag 8 first even though 7 was sent first.
                let (_, b): (usize, u8) = r.recv_t(Some(0), 8).unwrap();
                let (_, a): (usize, u8) = r.recv_t(Some(0), 7).unwrap();
                (a + b) as u32
            }
        });
        assert_eq!(out[1], 15);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        World::run(4, WireModel::instant(), move |mut r| {
            c.fetch_add(1, Ordering::SeqCst);
            r.barrier();
            // After the barrier, all pre-barrier increments are visible.
            assert_eq!(c.load(Ordering::SeqCst), 4);
            r.barrier();
        });
    }

    #[test]
    fn barrier_pays_latency() {
        let model = WireModel::with_latency(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        World::run(2, model, |mut r| {
            r.barrier();
        });
        // Arrive + release = at least 2 legs of 5 ms.
        assert!(
            t0.elapsed() >= Duration::from_millis(9),
            "{:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn remote_store_get() {
        let out = World::run(2, WireModel::instant(), |mut r| {
            if r.id() == 0 {
                r.store_put(42, vec![1, 2, 3]);
                r.barrier();
                0
            } else {
                r.barrier();
                let v = r.store_get(0, 42);
                v.iter().map(|&b| b as u32).sum::<u32>()
            }
        });
        assert_eq!(out[1], 6);
    }

    #[test]
    fn missing_store_key_returns_empty() {
        let out = World::run(2, WireModel::instant(), |mut r| {
            if r.id() == 1 {
                r.store_get(0, 999).len()
            } else {
                0
            }
        });
        assert_eq!(out[1], 0);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, WireModel::instant(), |mut r| {
            r.barrier(); // no-op
            r.id()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_rejected() {
        World::run(1, WireModel::instant(), |mut r| {
            r.send(0, TAG_BARRIER, Vec::new());
        });
    }
}
