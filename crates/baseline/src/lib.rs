//! # px-baseline — the "communicating sequential processes" comparator
//!
//! The ParalleX paper positions the model against "the communication
//! sequential process or more commonly the 'message passing model'
//! represented by various implementations of MPI" (§1). To measure the
//! claims, this crate implements that world faithfully enough to hurt:
//!
//! * [`csp`] — ranks as sequential OS threads with **blocking** two-sided
//!   `send`/`recv` (eager-buffered, MPI style), tag matching, and a
//!   message-based **global barrier** (gather-to-root + broadcast, paying
//!   full wire latency both ways).
//! * [`bsp`] — bulk-synchronous supersteps and collectives (reduce /
//!   allreduce) built on [`csp`].
//! * An RDMA-style **remote store** (`get`/`put`) whose responder costs
//!   the *owner* no compute — deliberately generous to the baseline, so
//!   the latency-hiding wins measured for ParalleX are conservative.
//!
//! Crucially, all messages travel through the same
//! [`px_core::net::DelayLine`] mechanism with the same [`WireModel`]
//! arithmetic as the ParalleX runtime: the experiments compare execution
//! models, not transport implementations.
//!
//! ```
//! use px_baseline::csp::World;
//! use px_core::net::WireModel;
//!
//! let results = World::run(4, WireModel::instant(), |mut rank| {
//!     // Ring: everyone sends its id right, receives from the left.
//!     let n = rank.world_size();
//!     let right = (rank.id() + 1) % n;
//!     rank.send_t(right, 0, &(rank.id() as u64)).unwrap();
//!     let (_, left_id): (usize, u64) = rank.recv_t(None, 0).unwrap();
//!     left_id
//! });
//! assert_eq!(results, vec![3, 0, 1, 2]);
//! ```

#![warn(missing_docs)]

pub mod bsp;
pub mod csp;

pub use px_core::net::WireModel;
