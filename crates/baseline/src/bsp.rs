//! Bulk-synchronous supersteps and collectives over the CSP world.
//!
//! The BSP discipline — compute, exchange, **global barrier**, repeat — is
//! exactly the "over constraining operation imposed by barriers" that §2.2
//! says LCOs relax. Experiment E3 runs the same staged workload under this
//! module and under LCO dataflow chaining and compares completion times as
//! per-task imbalance grows.

use crate::csp::{Rank, TAG_REDUCE};
use serde::{de::DeserializeOwned, Serialize};

/// Run `stages` supersteps: at stage `s` the rank executes
/// `work(s, rank)`, then all ranks barrier before the next stage.
pub fn supersteps<F: FnMut(usize, &mut Rank)>(rank: &mut Rank, stages: usize, mut work: F) {
    for s in 0..stages {
        work(s, rank);
        rank.barrier();
    }
}

/// Reduce `value` to rank 0 with `fold`; returns `Some(total)` on rank 0,
/// `None` elsewhere. Gather-to-root, each contribution paying the wire.
pub fn reduce<T, F>(rank: &mut Rank, value: T, fold: F) -> Option<T>
where
    T: Serialize + DeserializeOwned,
    F: Fn(T, T) -> T,
{
    let n = rank.world_size();
    if rank.id() == 0 {
        let mut acc = value;
        for _ in 1..n {
            let (_, v): (usize, T) = rank.recv_t(None, TAG_REDUCE).expect("reduce recv");
            acc = fold(acc, v);
        }
        Some(acc)
    } else {
        rank.send_sys_t(0, TAG_REDUCE, &value).expect("reduce send");
        None
    }
}

/// Allreduce: [`reduce`] then broadcast the total back out.
pub fn allreduce<T, F>(rank: &mut Rank, value: T, fold: F) -> T
where
    T: Serialize + DeserializeOwned,
    F: Fn(T, T) -> T,
{
    let n = rank.world_size();
    match reduce(rank, value, fold) {
        Some(total) => {
            for r in 1..n {
                rank.send_sys_t(r, TAG_REDUCE, &total).expect("bcast send");
            }
            total
        }
        None => {
            let (_, total): (usize, T) = rank.recv_t(Some(0), TAG_REDUCE).expect("bcast recv");
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::World;
    use px_core::net::WireModel;

    #[test]
    fn reduce_sums() {
        let out = World::run(4, WireModel::instant(), |mut r| {
            let v = r.id() as u64 + 1;
            reduce(&mut r, v, |a, b| a + b)
        });
        assert_eq!(out[0], Some(10));
        assert_eq!(out[1], None);
    }

    #[test]
    fn allreduce_broadcasts_total() {
        let out = World::run(4, WireModel::instant(), |mut r| {
            let v = r.id() as u64;
            allreduce(&mut r, v, |a, b| a + b)
        });
        assert_eq!(out, vec![6, 6, 6, 6]);
    }

    #[test]
    fn supersteps_run_in_lockstep() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let max_skew = Arc::new(AtomicUsize::new(0));
        let stage_counter = Arc::new(AtomicUsize::new(0));
        let (ms, sc) = (max_skew.clone(), stage_counter.clone());
        World::run(4, WireModel::instant(), move |mut r| {
            supersteps(&mut r, 5, |s, _r| {
                // All ranks must observe the same stage: the counter can
                // differ by at most world_size within a stage.
                let seen = sc.fetch_add(1, Ordering::SeqCst);
                let expect_lo = s * 4;
                let skew = seen.saturating_sub(expect_lo);
                ms.fetch_max(skew, Ordering::SeqCst);
            });
        });
        assert_eq!(stage_counter.load(Ordering::SeqCst), 20);
        assert!(max_skew.load(Ordering::SeqCst) < 4);
    }

    #[test]
    fn allreduce_with_max() {
        let out = World::run(3, WireModel::instant(), |mut r| {
            let v = (r.id() as i64 - 1) * 7;
            allreduce(&mut r, v, i64::max)
        });
        assert_eq!(out, vec![7, 7, 7]);
    }
}
