//! # px-gilgamesh — the Gilgamesh II architecture study (§3)
//!
//! The paper proposes Gilgamesh II as "a ParalleX processing architecture"
//! and evaluates it as a **design point** for a 2020 technology target:
//!
//! > "A single building block element is used to build up this highly
//! > parallel system. A peak performance in excess of 1 Exaflops is
//! > achievable with 100K chips. Each Gilgamesh chip is a heterogeneous
//! > multicore subsystem with a dataflow accelerator and 16 PIM modules,
//! > each with 32 MIND nodes. Each chip is capable of approximately 10
//! > Teraflops … a DRAM backing store referred to as the 'Penultimate
//! > Store' is included on an additional 100K chips for a total memory
//! > storage of 4 Petabytes."
//!
//! This crate makes that paragraph executable:
//!
//! * [`design_point`] — the §3.2 arithmetic as a parameterized model
//!   (experiment E1 regenerates the design-point table and sweeps it);
//! * [`modality`] — cycle-level models of the chip's **two modalities**:
//!   the dataflow accelerator (high temporal locality) and the MIND
//!   processor-in-memory (low temporal locality), plus a conventional
//!   cached core for reference (experiment E7);
//! * [`chip`] — a discrete-event simulation (on `px-sim`) of one chip's
//!   PIM fabric executing a parcel-driven task load, with per-node
//!   utilization and in-memory-thread statistics.

#![warn(missing_docs)]

pub mod chip;
pub mod design_point;
pub mod modality;
