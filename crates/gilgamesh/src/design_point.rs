//! The §3.2 design point, as arithmetic you can sweep.
//!
//! The paper pins: 100K compute chips, each with one dataflow accelerator
//! and 16 PIM modules × 32 MIND nodes, ≈10 TFLOPS per chip, >1 EFLOPS
//! system peak, and 4 PB of DRAM "Penultimate Store" spread over another
//! 100K chips. [`DesignPoint::paper_2020`] reproduces those numbers;
//! everything is a plain field so experiment E1 can sweep chip counts,
//! node rates, and store sizing.

use serde::{Deserialize, Serialize};

/// Parameters of a Gilgamesh II system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Compute chips in the system.
    pub compute_chips: u64,
    /// PIM modules per chip.
    pub pim_modules_per_chip: u64,
    /// MIND nodes per PIM module.
    pub mind_nodes_per_module: u64,
    /// Sustained FLOPS per MIND node (double precision).
    pub flops_per_mind_node: f64,
    /// FLOPS contributed by the dataflow accelerator per chip.
    pub accelerator_flops_per_chip: f64,
    /// In-memory hardware thread contexts per MIND node.
    pub threads_per_mind_node: u64,
    /// Local memory per MIND node, bytes.
    pub memory_per_mind_node: u64,
    /// Penultimate-store chips.
    pub store_chips: u64,
    /// DRAM per store chip, bytes.
    pub store_per_chip: u64,
    /// Power per compute chip, watts (2020-target envelope).
    pub watts_per_compute_chip: f64,
    /// Power per store chip, watts.
    pub watts_per_store_chip: f64,
}

const TERA: f64 = 1e12;
// Storage petabytes are decimal (1 PB = 10^15 bytes), as in the DRAM
// sizing literature the paper draws on; 4 PB over 100K chips is then an
// exact 40 GB per store chip.
const PETA_BYTES: u64 = 1_000_000_000_000_000;

impl DesignPoint {
    /// The paper's 2020 design point. Splits the ≈10 TF chip as 6.144 TF
    /// of MIND fabric (512 nodes × 12 GF) + 4.096 TF of dataflow
    /// accelerator → 10.24 TF/chip and 1.024 EF system peak ("in excess
    /// of 1 Exaflops", chip "approximately 10 Teraflops"). The paper
    /// gives only the chip total; the split is our modeling choice,
    /// recorded here so the derived numbers are auditable.
    pub fn paper_2020() -> DesignPoint {
        DesignPoint {
            compute_chips: 100_000,
            pim_modules_per_chip: 16,
            mind_nodes_per_module: 32,
            flops_per_mind_node: 12.0e9,
            accelerator_flops_per_chip: 4.096 * TERA,
            threads_per_mind_node: 16,
            memory_per_mind_node: 8 << 20, // 8 MiB embedded per node → 4 GiB/chip
            store_chips: 100_000,
            store_per_chip: 40_000_000_000, // 40 GB × 100K chips = 4 PB
            watts_per_compute_chip: 160.0,
            watts_per_store_chip: 40.0,
        }
    }

    /// MIND nodes per chip.
    pub fn mind_nodes_per_chip(&self) -> u64 {
        self.pim_modules_per_chip * self.mind_nodes_per_module
    }

    /// Total MIND nodes in the system.
    pub fn total_mind_nodes(&self) -> u64 {
        self.compute_chips * self.mind_nodes_per_chip()
    }

    /// Peak FLOPS of one chip (MIND fabric + accelerator).
    pub fn flops_per_chip(&self) -> f64 {
        self.mind_nodes_per_chip() as f64 * self.flops_per_mind_node
            + self.accelerator_flops_per_chip
    }

    /// System peak FLOPS.
    pub fn system_flops(&self) -> f64 {
        self.compute_chips as f64 * self.flops_per_chip()
    }

    /// Embedded (MIND) memory system-wide, bytes.
    pub fn mind_memory_bytes(&self) -> u64 {
        self.total_mind_nodes() * self.memory_per_mind_node
    }

    /// Penultimate-store capacity, bytes.
    pub fn store_bytes(&self) -> u64 {
        self.store_chips * self.store_per_chip
    }

    /// Hardware parallelism: in-memory thread contexts system-wide. The
    /// §2.1 requirement is "million to billion way parallelism"; this is
    /// the hardware side of that budget.
    pub fn hardware_threads(&self) -> u64 {
        self.total_mind_nodes() * self.threads_per_mind_node
    }

    /// Total system power, watts.
    pub fn system_watts(&self) -> f64 {
        self.compute_chips as f64 * self.watts_per_compute_chip
            + self.store_chips as f64 * self.watts_per_store_chip
    }

    /// Energy efficiency, FLOPS per watt.
    pub fn flops_per_watt(&self) -> f64 {
        self.system_flops() / self.system_watts()
    }

    /// Bytes-per-FLOP balance (total memory / peak FLOPS) — the "new
    /// balance of resources" §2.1 says the model must move toward.
    pub fn bytes_per_flop(&self) -> f64 {
        (self.mind_memory_bytes() + self.store_bytes()) as f64 / self.system_flops()
    }

    /// The derived summary used by the E1 table.
    pub fn summary(&self) -> DesignSummary {
        DesignSummary {
            flops_per_chip: self.flops_per_chip(),
            system_exaflops: self.system_flops() / 1e18,
            total_mind_nodes: self.total_mind_nodes(),
            hardware_threads: self.hardware_threads(),
            mind_memory_pb: self.mind_memory_bytes() as f64 / PETA_BYTES as f64,
            store_pb: self.store_bytes() as f64 / PETA_BYTES as f64,
            system_megawatts: self.system_watts() / 1e6,
            gflops_per_watt: self.flops_per_watt() / 1e9,
            bytes_per_flop: self.bytes_per_flop(),
        }
    }
}

/// Derived quantities reported in the design-point table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct DesignSummary {
    pub flops_per_chip: f64,
    pub system_exaflops: f64,
    pub total_mind_nodes: u64,
    pub hardware_threads: u64,
    pub mind_memory_pb: f64,
    pub store_pb: f64,
    pub system_megawatts: f64,
    pub gflops_per_watt: f64,
    pub bytes_per_flop: f64,
}

/// Checks a configuration against the paper's §3.2 claims; returns the
/// list of violated claims (empty = design point reproduces the paper).
pub fn check_paper_claims(dp: &DesignPoint) -> Vec<String> {
    let mut violations = Vec::new();
    let s = dp.summary();
    if s.system_exaflops <= 1.0 {
        violations.push(format!(
            "peak must exceed 1 EFLOPS, got {:.3} EF",
            s.system_exaflops
        ));
    }
    if dp.compute_chips != 100_000 {
        violations.push(format!("paper uses 100K chips, got {}", dp.compute_chips));
    }
    if dp.pim_modules_per_chip != 16 || dp.mind_nodes_per_module != 32 {
        violations.push(format!(
            "paper chip is 16 PIM × 32 MIND, got {} × {}",
            dp.pim_modules_per_chip, dp.mind_nodes_per_module
        ));
    }
    let chip_tf = s.flops_per_chip / TERA;
    if !(8.0..=12.0).contains(&chip_tf) {
        violations.push(format!("paper chip is ≈10 TFLOPS, got {chip_tf:.1} TF"));
    }
    if (s.store_pb - 4.0).abs() > 0.05 {
        violations.push(format!(
            "penultimate store must be 4 PB, got {:.2} PB",
            s.store_pb
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_reproduces_all_claims() {
        let dp = DesignPoint::paper_2020();
        let violations = check_paper_claims(&dp);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn chip_is_about_ten_teraflops() {
        let dp = DesignPoint::paper_2020();
        let tf = dp.flops_per_chip() / 1e12;
        assert!((tf - 10.0).abs() < 0.5, "chip = {tf} TF");
    }

    #[test]
    fn system_exceeds_exaflops() {
        let dp = DesignPoint::paper_2020();
        assert!(dp.system_flops() > 1e18);
        // "theoretical peak is substantially higher" than 1 EF but the
        // quoted achievable is ~1 EF: ours is exactly 1.0 EF nominal.
        assert!(dp.system_flops() < 1.2e18);
    }

    #[test]
    fn mind_population() {
        let dp = DesignPoint::paper_2020();
        assert_eq!(dp.mind_nodes_per_chip(), 512);
        assert_eq!(dp.total_mind_nodes(), 51_200_000);
    }

    #[test]
    fn store_is_four_petabytes() {
        let dp = DesignPoint::paper_2020();
        assert_eq!(dp.store_bytes(), 4_000_000_000_000_000);
    }

    #[test]
    fn parallelism_budget_is_near_billion_way() {
        // §2.1: "million to billion way parallelism … by the end of the
        // next decade". Hardware threads: 51.2M nodes × 16 = 819M.
        let dp = DesignPoint::paper_2020();
        let t = dp.hardware_threads();
        assert!(t > 100_000_000, "threads = {t}");
        assert!(t < 2_000_000_000, "threads = {t}");
    }

    #[test]
    fn halving_chips_halves_flops() {
        let mut dp = DesignPoint::paper_2020();
        let full = dp.system_flops();
        dp.compute_chips /= 2;
        assert!((dp.system_flops() - full / 2.0).abs() / full < 1e-12);
    }

    #[test]
    fn violations_detected() {
        let mut dp = DesignPoint::paper_2020();
        dp.compute_chips = 10; // tiny system
        let v = check_paper_claims(&dp);
        assert!(v.iter().any(|m| m.contains("EFLOPS")));
        assert!(v.iter().any(|m| m.contains("100K")));
    }

    #[test]
    fn power_envelope_is_plausible_for_2020_target() {
        // Sanity: tens of megawatts, single-digit GF/W — consistent with
        // exascale projections of the era (DARPA exascale studies).
        let s = DesignPoint::paper_2020().summary();
        assert!(s.system_megawatts > 5.0 && s.system_megawatts < 50.0);
        assert!(s.gflops_per_watt > 10.0);
    }
}
