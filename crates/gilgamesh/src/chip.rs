//! One Gilgamesh II chip's PIM fabric as a discrete-event simulation.
//!
//! Figure 1's chip is "a heterogeneous multicore subsystem with a dataflow
//! accelerator and 16 PIM modules, each with 32 MIND nodes". This module
//! instantiates that structure on `px-sim`: 512 [`MindNodeSim`] components
//! behind intra-chip links (cheap within a module, pricier across
//! modules), driven by a parcel dispatcher. It measures what the
//! message-driven work-queue model (§2.2) predicts: throughput and node
//! balance as a function of task skew.

use px_sim::{CompId, Component, Histogram, SimCtx, Simulator, Time};
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Paper chip geometry.
pub const PIM_MODULES: usize = 16;
/// MIND nodes per module.
pub const NODES_PER_MODULE: usize = 32;
/// Nodes per chip.
pub const NODES_PER_CHIP: usize = PIM_MODULES * NODES_PER_MODULE;

/// A parcel-delivered task for a MIND node.
#[derive(Debug, Clone, Copy)]
pub struct MindTask {
    /// Local memory accesses the task performs.
    pub mem_ops: u32,
    /// ALU operations.
    pub alu_ops: u32,
}

impl MindTask {
    /// Service time on a MIND node (one thread context).
    fn service(&self, near_cycles: Time) -> Time {
        u64::from(self.mem_ops) * near_cycles + u64::from(self.alu_ops)
    }
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
pub enum ChipEv {
    /// Task arrival at a node.
    Arrive(MindTask),
    /// One thread context finished its task.
    Done,
}

/// Shared measurement sink for the whole chip.
#[derive(Debug, Default)]
pub struct ChipMetrics {
    /// Tasks retired per node.
    pub retired: Vec<u64>,
    /// Busy cycles integrated per node (sum over thread contexts).
    pub busy: Vec<u64>,
    /// Queue-depth histogram sampled at arrivals.
    pub queue_depth: Histogram,
    /// Completion time of the last task.
    pub makespan: Time,
}

/// One MIND node: `threads` in-memory contexts over a task queue.
pub struct MindNodeSim {
    idx: usize,
    threads: usize,
    near_cycles: Time,
    active: usize,
    queue: std::collections::VecDeque<MindTask>,
    metrics: Rc<RefCell<ChipMetrics>>,
}

impl Component<ChipEv> for MindNodeSim {
    fn handle(&mut self, ev: ChipEv, ctx: &mut SimCtx<'_, ChipEv>) {
        match ev {
            ChipEv::Arrive(task) => {
                self.metrics
                    .borrow_mut()
                    .queue_depth
                    .record(self.queue.len() as u64);
                if self.active < self.threads {
                    self.start(task, ctx);
                } else {
                    self.queue.push_back(task);
                }
            }
            ChipEv::Done => {
                self.active -= 1;
                let mut m = self.metrics.borrow_mut();
                m.retired[self.idx] += 1;
                m.makespan = m.makespan.max(ctx.now());
                drop(m);
                if let Some(task) = self.queue.pop_front() {
                    self.start(task, ctx);
                }
            }
        }
    }
}

impl MindNodeSim {
    fn start(&mut self, task: MindTask, ctx: &mut SimCtx<'_, ChipEv>) {
        self.active += 1;
        let service = task.service(self.near_cycles);
        self.metrics.borrow_mut().busy[self.idx] += service;
        ctx.wake_after(service, ChipEv::Done);
    }
}

/// Chip-level workload description.
#[derive(Debug, Clone, Copy)]
pub struct ChipWorkload {
    /// Total tasks injected.
    pub tasks: usize,
    /// Zipf skew of the node choice (0 = uniform).
    pub skew: f64,
    /// Memory accesses per task.
    pub mem_ops: u32,
    /// ALU ops per task.
    pub alu_ops: u32,
    /// Injection rate: tasks per cycle offered to the chip.
    pub inject_per_cycle: f64,
}

/// Result of a chip fabric run.
#[derive(Debug, Clone)]
pub struct ChipRunResult {
    /// Cycles until the last task retired.
    pub makespan: Time,
    /// Tasks retired (equals the injected count).
    pub retired: u64,
    /// Throughput in tasks per kilocycle.
    pub tasks_per_kcycle: f64,
    /// Mean node utilization (busy context-cycles / (threads × makespan)).
    pub mean_utilization: f64,
    /// Max/min retired-task ratio across nodes (balance measure; 1.0 =
    /// perfectly balanced, grows with skew).
    pub imbalance: f64,
    /// p95 queue depth observed at arrival.
    pub queue_p95: f64,
}

/// Simulate one chip's PIM fabric under `workload`.
///
/// Intra-chip routing: module-local arrivals cost `LOCAL_HOP` cycles,
/// cross-module `CROSS_HOP` (the on-chip interconnect of Figure 1).
pub fn simulate_chip(workload: ChipWorkload, threads_per_node: usize, seed: u64) -> ChipRunResult {
    const LOCAL_HOP: Time = 4;
    const CROSS_HOP: Time = 24;
    const NEAR_CYCLES: Time = 30;

    let metrics = Rc::new(RefCell::new(ChipMetrics {
        retired: vec![0; NODES_PER_CHIP],
        busy: vec![0; NODES_PER_CHIP],
        queue_depth: Histogram::new(),
        makespan: 0,
    }));
    let mut sim = Simulator::new(seed);
    for idx in 0..NODES_PER_CHIP {
        sim.add(MindNodeSim {
            idx,
            threads: threads_per_node,
            near_cycles: NEAR_CYCLES,
            active: 0,
            queue: std::collections::VecDeque::new(),
            metrics: metrics.clone(),
        });
    }

    // Zipf CDF over nodes.
    let weights: Vec<f64> = (1..=NODES_PER_CHIP)
        .map(|r| 1.0 / (r as f64).powf(workload.skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(NODES_PER_CHIP);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x5eed);
    let task = MindTask {
        mem_ops: workload.mem_ops,
        alu_ops: workload.alu_ops,
    };
    // The dispatcher is modeled as scheduled arrivals: task k is injected
    // at cycle k / rate, routed to a (possibly skewed) node with a hop
    // delay. Module 0 hosts the dispatcher port.
    for k in 0..workload.tasks {
        let u: f64 = rng.gen_range(0.0..1.0);
        let node = cdf
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(NODES_PER_CHIP - 1);
        let inject = (k as f64 / workload.inject_per_cycle) as Time;
        let hop = if node < NODES_PER_MODULE {
            LOCAL_HOP
        } else {
            CROSS_HOP
        };
        sim.send_at(inject + hop, CompId(node as u32), ChipEv::Arrive(task));
    }
    sim.run();

    let m = metrics.borrow();
    let retired: u64 = m.retired.iter().sum();
    let makespan = m.makespan.max(1);
    let busy_total: u64 = m.busy.iter().sum();
    let max_r = *m.retired.iter().max().unwrap() as f64;
    let min_r = (*m.retired.iter().min().unwrap()).max(1) as f64;
    ChipRunResult {
        makespan,
        retired,
        tasks_per_kcycle: retired as f64 / makespan as f64 * 1000.0,
        mean_utilization: busy_total as f64
            / (NODES_PER_CHIP as f64 * threads_per_node as f64 * makespan as f64),
        imbalance: max_r / min_r,
        queue_p95: m.queue_depth.p95(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_workload() -> ChipWorkload {
        ChipWorkload {
            tasks: 50_000,
            skew: 0.0,
            mem_ops: 8,
            alu_ops: 64,
            inject_per_cycle: 2.0,
        }
    }

    #[test]
    fn all_tasks_retire() {
        let r = simulate_chip(base_workload(), 16, 1);
        assert_eq!(r.retired, 50_000);
        assert!(r.makespan > 0);
    }

    #[test]
    fn uniform_load_is_balanced() {
        let r = simulate_chip(base_workload(), 16, 1);
        assert!(r.imbalance < 2.0, "imbalance = {}", r.imbalance);
    }

    #[test]
    fn skew_degrades_balance_and_throughput() {
        let uniform = simulate_chip(base_workload(), 16, 1);
        let skewed = simulate_chip(
            ChipWorkload {
                skew: 1.2,
                ..base_workload()
            },
            16,
            1,
        );
        assert!(skewed.imbalance > 4.0 * uniform.imbalance);
        assert!(skewed.makespan > uniform.makespan);
    }

    #[test]
    fn more_threads_raise_throughput_under_load() {
        let mut w = base_workload();
        w.inject_per_cycle = 8.0; // saturating
        let t1 = simulate_chip(w, 1, 2);
        let t16 = simulate_chip(w, 16, 2);
        assert!(
            t16.makespan < t1.makespan,
            "16 contexts should beat 1: {} vs {}",
            t16.makespan,
            t1.makespan
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate_chip(base_workload(), 16, 9);
        let b = simulate_chip(base_workload(), 16, 9);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.retired, b.retired);
    }

    #[test]
    fn geometry_constants_match_paper() {
        assert_eq!(PIM_MODULES, 16);
        assert_eq!(NODES_PER_MODULE, 32);
        assert_eq!(NODES_PER_CHIP, 512);
    }
}
