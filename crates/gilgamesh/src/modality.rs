//! The chip's two modalities (§3.2, Figure 1), cycle-level.
//!
//! "the architecture is heterogeneous with two computing structures
//! designed to operate best at the two modalities of operation determined
//! by degree of temporal locality. At high temporal locality (where cache
//! hit rates would be highest on conventional processors) a streaming
//! architecture based on dataflow control concentrates many ALUs … At low
//! (or no) temporal locality (where cache hit rates would be very poor) an
//! advanced Processor in Memory architecture called 'MIND' … provide\[s\]
//! short latencies and very high memory bandwidth with in-memory threads."
//!
//! Three execution models consume the same `(address, alu_ops)` task
//! stream and report cycles:
//!
//! * [`CachedCore`] — conventional core: LRU cache, blocking misses to
//!   far memory, one thread. The reference point.
//! * [`MindNode`] — PIM: memory is *near* (tens of cycles), and `threads`
//!   in-memory contexts overlap stalls (round-robin switch-on-miss).
//! * [`DataflowAccelerator`] — many ALUs stream from a software-managed
//!   local store; hits cost amortized zero, but a miss stalls the whole
//!   array for the off-chip latency (no caches, no reactive tolerance —
//!   it relies on percolation to be fed).
//!
//! Experiment E7 sweeps temporal locality θ and shows the crossover the
//! paper's heterogeneity argument requires: accelerator wins at high θ,
//! MIND wins at low θ.

/// One unit of work: touch `addr`, then do `alu_ops` operations.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// Address touched.
    pub addr: u64,
    /// ALU work attached to the access.
    pub alu_ops: u32,
}

/// Build an access stream from addresses with constant attached compute.
pub fn stream_from_addrs(addrs: &[u64], alu_ops: u32) -> Vec<Access> {
    addrs.iter().map(|&addr| Access { addr, alu_ops }).collect()
}

/// Result of running a stream on a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Total cycles.
    pub cycles: u64,
    /// Total ALU operations retired.
    pub ops: u64,
    /// Memory accesses that hit local storage.
    pub hits: u64,
    /// Memory accesses that went far.
    pub misses: u64,
}

impl RunResult {
    /// Operations per cycle — the modality figure of merit.
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64
        }
    }

    /// Hit rate over the run.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

// Shared LRU tag array used by all three local-storage models.
#[derive(Debug, Clone)]
struct Lru {
    lines: Vec<u64>,
    cap: usize,
}

impl Lru {
    fn new(cap: usize) -> Lru {
        Lru {
            lines: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Touch an address; true on hit.
    fn touch(&mut self, addr: u64) -> bool {
        if let Some(pos) = self.lines.iter().position(|&a| a == addr) {
            self.lines.remove(pos);
            self.lines.insert(0, addr);
            true
        } else {
            self.lines.insert(0, addr);
            if self.lines.len() > self.cap {
                self.lines.pop();
            }
            false
        }
    }
}

/// Conventional cached core: 1 ALU op/cycle, blocking misses.
#[derive(Debug, Clone)]
pub struct CachedCore {
    /// Cache capacity in lines.
    pub cache_lines: usize,
    /// Hit cost, cycles.
    pub hit_cycles: u64,
    /// Miss (far memory) cost, cycles.
    pub miss_cycles: u64,
}

impl CachedCore {
    /// A 2007-flavored core: big cache, painful misses.
    pub fn default_2020() -> CachedCore {
        CachedCore {
            cache_lines: 256,
            hit_cycles: 1,
            miss_cycles: 400,
        }
    }

    /// Run the stream to completion.
    pub fn run(&self, stream: &[Access]) -> RunResult {
        let mut lru = Lru::new(self.cache_lines);
        let mut r = RunResult {
            cycles: 0,
            ops: 0,
            hits: 0,
            misses: 0,
        };
        for a in stream {
            if lru.touch(a.addr) {
                r.hits += 1;
                r.cycles += self.hit_cycles;
            } else {
                r.misses += 1;
                r.cycles += self.miss_cycles; // blocking: nothing overlaps
            }
            r.cycles += u64::from(a.alu_ops); // 1 op/cycle
            r.ops += u64::from(a.alu_ops);
        }
        r
    }
}

/// MIND processor-in-memory node: near memory + in-memory multithreading.
#[derive(Debug, Clone)]
pub struct MindNode {
    /// Hardware thread contexts.
    pub threads: usize,
    /// Local (on-die DRAM row) access cost, cycles.
    pub near_cycles: u64,
    /// Non-local access cost (another bank/module), cycles.
    pub far_cycles: u64,
    /// Fraction of the address space that is node-local (rest is far).
    pub local_fraction: f64,
    /// Row-buffer entries acting as a tiny cache.
    pub row_buffer_lines: usize,
}

impl MindNode {
    /// The modeled MIND node: 16 threads, 30-cycle near memory.
    pub fn default_2020() -> MindNode {
        MindNode {
            threads: 16,
            near_cycles: 30,
            far_cycles: 150,
            local_fraction: 0.9,
            row_buffer_lines: 8,
        }
    }

    /// Run the stream: tasks are dealt round-robin to thread contexts;
    /// each context serializes its own accesses, contexts overlap each
    /// other (switch-on-miss). One shared ALU issue port (1 op/cycle)
    /// models the modest PIM datapath: completion is
    /// `max(memory-limited, issue-limited)`.
    pub fn run(&self, stream: &[Access]) -> RunResult {
        let mut ctx_free_at = vec![0u64; self.threads];
        let mut lru = Lru::new(self.row_buffer_lines);
        let mut r = RunResult {
            cycles: 0,
            ops: 0,
            hits: 0,
            misses: 0,
        };
        let mut alu_total = 0u64;
        for (i, a) in stream.iter().enumerate() {
            let lat = if lru.touch(a.addr) {
                r.hits += 1;
                1
            } else if (a.addr as f64 / u64::MAX as f64) < self.local_fraction {
                r.misses += 1;
                self.near_cycles
            } else {
                r.misses += 1;
                self.far_cycles
            };
            let c = i % self.threads;
            ctx_free_at[c] += lat + u64::from(a.alu_ops);
            alu_total += u64::from(a.alu_ops);
            r.ops += u64::from(a.alu_ops);
        }
        let mem_limited = ctx_free_at.into_iter().max().unwrap_or(0);
        r.cycles = mem_limited.max(alu_total); // one shared issue port
        r
    }
}

/// Streaming dataflow accelerator: wide ALU array fed from a local store.
#[derive(Debug, Clone)]
pub struct DataflowAccelerator {
    /// ALUs issuing per cycle when streaming.
    pub alus: usize,
    /// Local-store capacity in lines (percolation target).
    pub local_store_lines: usize,
    /// Off-chip fill cost on a local-store miss, cycles (stalls the
    /// array — the accelerator has no latency tolerance of its own).
    pub offchip_cycles: u64,
}

impl DataflowAccelerator {
    /// The modeled accelerator: 64-wide, small local store, far off-chip.
    pub fn default_2020() -> DataflowAccelerator {
        DataflowAccelerator {
            alus: 64,
            local_store_lines: 256,
            offchip_cycles: 600,
        }
    }

    /// Run the stream: hits stream through the ALU array
    /// (`alu_ops / alus` cycles, min 1 per access for issue); misses
    /// stall everything for the off-chip latency.
    pub fn run(&self, stream: &[Access]) -> RunResult {
        let mut lru = Lru::new(self.local_store_lines);
        let mut r = RunResult {
            cycles: 0,
            ops: 0,
            hits: 0,
            misses: 0,
        };
        for a in stream {
            if lru.touch(a.addr) {
                r.hits += 1;
            } else {
                r.misses += 1;
                r.cycles += self.offchip_cycles;
            }
            r.cycles += (u64::from(a.alu_ops)).div_ceil(self.alus as u64).max(1);
            r.ops += u64::from(a.alu_ops);
        }
        r
    }
}

/// One θ-row of the E7 table.
#[derive(Debug, Clone, Copy)]
pub struct ModalityRow {
    /// Temporal-locality parameter of the stream.
    pub theta: f64,
    /// Measured LRU hit rate of the stream (256-line reference cache).
    pub hit_rate: f64,
    /// Conventional core ops/cycle.
    pub cached: f64,
    /// MIND ops/cycle.
    pub mind: f64,
    /// Accelerator ops/cycle.
    pub accel: f64,
}

/// Run the full modality sweep for experiment E7.
pub fn modality_sweep(
    thetas: &[f64],
    accesses: usize,
    alu_ops: u32,
    seed: u64,
) -> Vec<ModalityRow> {
    thetas
        .iter()
        .map(|&theta| {
            let mut gen = px_workloads_stream(theta, 1 << 22, 128, seed ^ (theta * 1e6) as u64);
            let addrs: Vec<u64> = (0..accesses).map(|_| gen.next_addr()).collect();
            let stream = stream_from_addrs(&addrs, alu_ops);
            let hit_rate = lru_reference_hit_rate(&addrs, 256);
            ModalityRow {
                theta,
                hit_rate,
                cached: CachedCore::default_2020().run(&stream).ops_per_cycle(),
                mind: MindNode::default_2020().run(&stream).ops_per_cycle(),
                accel: DataflowAccelerator::default_2020()
                    .run(&stream)
                    .ops_per_cycle(),
            }
        })
        .collect()
}

// Local re-implementations so this crate doesn't depend on px-workloads
// (which would be a cycle: workloads stays dependency-free). Kept
// byte-compatible with `px_workloads::synth::LocalityStream` semantics.
use rand::{Rng, SeedableRng};

struct AddrStream {
    theta: f64,
    space: u64,
    working: Vec<u64>,
    cap: usize,
    rng: rand::rngs::SmallRng,
}

fn px_workloads_stream(theta: f64, space: u64, working_set: usize, seed: u64) -> AddrStream {
    AddrStream {
        theta,
        space,
        working: Vec::with_capacity(working_set),
        cap: working_set,
        rng: rand::rngs::SmallRng::seed_from_u64(seed),
    }
}

impl AddrStream {
    fn next_addr(&mut self) -> u64 {
        let reuse = !self.working.is_empty() && self.rng.gen_range(0.0..1.0) < self.theta;
        if reuse {
            let idx =
                (self.rng.gen_range(0.0f64..1.0).powi(2) * self.working.len() as f64) as usize;
            let idx = idx.min(self.working.len() - 1);
            let a = self.working.remove(idx);
            self.working.insert(0, a);
            a
        } else {
            let a = self.rng.gen_range(0..self.space);
            self.working.insert(0, a);
            if self.working.len() > self.cap {
                self.working.pop();
            }
            a
        }
    }
}

fn lru_reference_hit_rate(stream: &[u64], cache_lines: usize) -> f64 {
    let mut lru = Lru::new(cache_lines);
    let mut hits = 0usize;
    for &a in stream {
        if lru.touch(a) {
            hits += 1;
        }
    }
    if stream.is_empty() {
        0.0
    } else {
        hits as f64 / stream.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_stream(n: usize) -> Vec<Access> {
        // 32 addresses reused round-robin: fits every local store.
        (0..n)
            .map(|i| Access {
                addr: (i % 32) as u64,
                alu_ops: 16,
            })
            .collect()
    }

    fn cold_stream(n: usize) -> Vec<Access> {
        // Never-repeating addresses: misses everywhere.
        (0..n)
            .map(|i| Access {
                addr: i as u64 * 1_000_003,
                alu_ops: 16,
            })
            .collect()
    }

    #[test]
    fn cached_core_hit_vs_miss() {
        let core = CachedCore::default_2020();
        let hot = core.run(&hot_stream(10_000));
        let cold = core.run(&cold_stream(10_000));
        assert!(hot.hit_rate() > 0.99);
        assert!(cold.hit_rate() < 0.01);
        assert!(hot.ops_per_cycle() > 5.0 * cold.ops_per_cycle());
    }

    #[test]
    fn accelerator_dominates_on_hot_streams() {
        let hot = hot_stream(10_000);
        let accel = DataflowAccelerator::default_2020().run(&hot);
        let mind = MindNode::default_2020().run(&hot);
        let cached = CachedCore::default_2020().run(&hot);
        assert!(
            accel.ops_per_cycle() > 2.0 * mind.ops_per_cycle(),
            "accel {} vs mind {}",
            accel.ops_per_cycle(),
            mind.ops_per_cycle()
        );
        assert!(accel.ops_per_cycle() > 2.0 * cached.ops_per_cycle());
    }

    #[test]
    fn mind_dominates_on_cold_streams() {
        let cold = cold_stream(10_000);
        let accel = DataflowAccelerator::default_2020().run(&cold);
        let mind = MindNode::default_2020().run(&cold);
        let cached = CachedCore::default_2020().run(&cold);
        assert!(
            mind.ops_per_cycle() > 2.0 * accel.ops_per_cycle(),
            "mind {} vs accel {}",
            mind.ops_per_cycle(),
            accel.ops_per_cycle()
        );
        assert!(mind.ops_per_cycle() > 2.0 * cached.ops_per_cycle());
    }

    #[test]
    fn sweep_shows_crossover() {
        let rows = modality_sweep(&[0.05, 0.5, 0.98], 20_000, 16, 7);
        assert_eq!(rows.len(), 3);
        // Hit rate rises with theta.
        assert!(rows[0].hit_rate < rows[2].hit_rate);
        // MIND wins the cold end, accelerator the hot end.
        assert!(
            rows[0].mind > rows[0].accel,
            "cold end: mind {} vs accel {}",
            rows[0].mind,
            rows[0].accel
        );
        assert!(
            rows[2].accel > rows[2].mind,
            "hot end: accel {} vs mind {}",
            rows[2].accel,
            rows[2].mind
        );
    }

    #[test]
    fn mind_threads_tolerate_latency() {
        // Small attached compute so the shared issue port is not the
        // bottleneck: the speedup then reflects memory-latency hiding.
        let cold: Vec<Access> = (0..10_000)
            .map(|i| Access {
                addr: i as u64 * 1_000_003,
                alu_ops: 4,
            })
            .collect();
        let mut one = MindNode::default_2020();
        one.threads = 1;
        let mt = MindNode::default_2020().run(&cold);
        let st = one.run(&cold);
        assert!(
            mt.ops_per_cycle() > 5.0 * st.ops_per_cycle(),
            "multithreading must hide memory latency: {} vs {}",
            mt.ops_per_cycle(),
            st.ops_per_cycle()
        );
    }

    #[test]
    fn results_are_deterministic() {
        let a = modality_sweep(&[0.5], 5_000, 8, 3);
        let b = modality_sweep(&[0.5], 5_000, 8, 3);
        assert_eq!(a[0].cached, b[0].cached);
        assert_eq!(a[0].mind, b[0].mind);
        assert_eq!(a[0].accel, b[0].accel);
    }
}
