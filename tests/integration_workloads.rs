//! Workloads on the runtime: physics stays correct when the computation
//! is distributed through parcels, LCOs, and processes.

use parallex::core::prelude::*;
use parallex::litlx::{CoarseThreads, LcCell};
use parallex::workloads::barnes_hut::{direct_forces, make_cluster};
use parallex::workloads::pic::PicState;

#[test]
fn distributed_reduce_matches_sequential_sum() {
    let rt = RuntimeBuilder::new(Config::small(4, 1)).build().unwrap();
    let n = 1000u64;
    let fold: parallex::core::lco::ReduceFn = Box::new(|a, b| {
        let x: u64 = a.decode().unwrap();
        let y: u64 = b.decode().unwrap();
        parallex::core::action::Value::encode(&(x + y)).unwrap()
    });
    let red = rt.new_reduce(LocalityId(0), n, &0u64, fold).unwrap();
    for k in 0..n {
        let red_gid = red.gid();
        rt.spawn_at(LocalityId((k % 4) as u16), move |ctx| {
            ctx.contribute(red_gid, &(k + 1)).unwrap();
        });
    }
    assert_eq!(rt.wait_future(red).unwrap(), n * (n + 1) / 2);
    rt.shutdown();
}

#[test]
fn bh_forces_on_runtime_match_direct() {
    // The E8 harness carries the full distributed implementation; this
    // test pins its correctness contract at small scale.
    let bodies = make_cluster(96, 5);
    let (_, forces) = px_bench_force_phase(&bodies, 2);
    let direct = direct_forces(&bodies);
    let mut num = 0.0;
    let mut den = 0.0;
    for (f, d) in forces.iter().zip(direct.iter()) {
        for k in 0..3 {
            num += (f[k] - d[k]).powi(2);
            den += d[k].powi(2);
        }
    }
    let err = (num / den).sqrt();
    assert!(err < 0.05, "relative RMS error {err}");
}

// Minimal re-implementation of the E8 force phase against the public API
// (px-bench is a bench-only crate, not a dependency of the facade tests).
fn px_bench_force_phase(
    bodies: &[parallex::workloads::barnes_hut::Body],
    locs: usize,
) -> (std::time::Duration, Vec<[f64; 3]>) {
    use parallex::workloads::barnes_hut::Octree;
    use parking_lot::RwLock;
    use std::sync::Arc;

    let rt = RuntimeBuilder::new(Config::small(locs, 1)).build().unwrap();
    let trees: Arc<Vec<RwLock<Option<Octree>>>> =
        Arc::new((0..locs).map(|_| RwLock::new(None)).collect());
    for l in 0..locs {
        let part: Vec<_> = bodies
            .iter()
            .enumerate()
            .filter(|(i, _)| i % locs == l)
            .map(|(_, b)| *b)
            .collect();
        *trees[l].write() = Some(Octree::build(&part));
    }
    let forces = Arc::new(RwLock::new(vec![[0.0f64; 3]; bodies.len()]));
    let gate = rt.new_and_gate(LocalityId(0), bodies.len() as u64);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    let t0 = std::time::Instant::now();
    for (i, b) in bodies.iter().enumerate() {
        let pos = b.pos;
        let trees = trees.clone();
        let forces = forces.clone();
        rt.spawn_at(LocalityId((i % locs) as u16), move |ctx| {
            // Work-to-data: each locality computes its tree's partial
            // force; here expressed with spawn_at + shared accumulator
            // futures created at the owner.
            let fold: parallex::core::lco::ReduceFn = Box::new(|a, b| {
                let x: [f64; 3] = a.decode().unwrap();
                let y: [f64; 3] = b.decode().unwrap();
                parallex::core::action::Value::encode(&[x[0] + y[0], x[1] + y[1], x[2] + y[2]])
                    .unwrap()
            });
            let red = ctx.new_reduce(locs as u64, &[0.0f64; 3], fold).unwrap();
            for j in 0..locs {
                let trees = trees.clone();
                let red_gid = red.gid();
                ctx.spawn_at(LocalityId(j as u16), move |ctx| {
                    let guard = trees[ctx.here().0 as usize].read();
                    let f = guard.as_ref().unwrap().force_on(pos, 0.4);
                    ctx.contribute(red_gid, &f).unwrap();
                });
            }
            let forces = forces.clone();
            ctx.when_future(red, move |ctx, total: [f64; 3]| {
                forces.write()[i] = total;
                ctx.trigger_value(gate, parallex::core::action::Value::unit());
            });
        });
    }
    rt.wait_future(gate_fut).unwrap();
    let elapsed = t0.elapsed();
    let out = forces.read().clone();
    rt.shutdown();
    (elapsed, out)
}

#[test]
fn pic_charge_conserved_under_distributed_deposit() {
    let rt = RuntimeBuilder::new(Config::small(3, 1)).build().unwrap();
    let state = PicState::two_stream(3000, 32, 1.0, 3);
    let parts = state.partition(3);
    let fold: parallex::core::lco::ReduceFn = Box::new(|a, b| {
        let mut x: Vec<f64> = a.decode().unwrap();
        let y: Vec<f64> = b.decode().unwrap();
        for (xi, yi) in x.iter_mut().zip(y.iter()) {
            *xi += yi;
        }
        parallex::core::action::Value::encode(&x).unwrap()
    });
    let red = rt
        .new_reduce(LocalityId(0), 3, &vec![0.0f64; 32], fold)
        .unwrap();
    let state = std::sync::Arc::new(state);
    for (l, slab) in parts.into_iter().enumerate() {
        let st = state.clone();
        let red_gid = red.gid();
        rt.spawn_at(LocalityId(l as u16), move |ctx| {
            let dx = st.dx();
            let w = 1.0 / st.particles.len() as f64 * st.cells as f64;
            let mut rho = vec![0.0f64; st.cells];
            for &pi in &slab {
                let p = st.particles[pi as usize];
                let xc = p.x / dx;
                let i0 = xc.floor() as usize % st.cells;
                let frac = xc - xc.floor();
                rho[i0] += w * (1.0 - frac);
                rho[(i0 + 1) % st.cells] += w * frac;
            }
            ctx.contribute(red_gid, &rho).unwrap();
        });
    }
    let rho = rt.wait_future(red).unwrap();
    let total: f64 = rho.iter().sum();
    // Total deposited charge equals particles × weight = cells.
    assert!((total - 32.0).abs() < 1e-9, "charge lost: {total}");
    rt.shutdown();
}

#[test]
fn coarse_threads_with_lc_cell_histogram() {
    // LITL-X end to end: coarse threads accumulate a histogram into a
    // location-consistent cell under an atomic section.
    let rt = RuntimeBuilder::new(Config::small(3, 2)).build().unwrap();
    let cell = LcCell::new(&rt, LocalityId(0), &vec![0u64; 8]).unwrap();
    let group = CoarseThreads::launch(&rt, 12, move |tid, ctx| {
        cell.atomic_update(ctx, move |_ctx, hist| {
            hist[tid % 8] += 1;
        });
    });
    group.join(&rt).unwrap();
    // Joining the group proves thread completion; the last release may
    // still be in flight, so poll briefly for the final publish.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let hist = cell.read_blocking(&rt).unwrap();
        if hist.iter().sum::<u64>() == 12 {
            assert_eq!(&hist[..4], &[2, 2, 2, 2]);
            break;
        }
        assert!(std::time::Instant::now() < deadline, "updates lost");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    rt.shutdown();
}

#[test]
fn graph_bfs_frontier_counts_match_sequential() {
    use parallex::workloads::graphs::Graph;
    let g = std::sync::Arc::new(Graph::scale_free(600, 2, 9));
    let levels_seq = g.bfs(0);

    // Distributed frontier expansion: one reduce LCO per level counts the
    // newly discovered vertices; owners expand their frontier slice.
    let rt = RuntimeBuilder::new(Config::small(2, 1)).build().unwrap();
    let owners = g.partition_hash(2);
    let visited = std::sync::Arc::new(parking_lot::RwLock::new(vec![u32::MAX; g.len()]));
    visited.write()[0] = 0;
    let mut frontier = vec![0u32];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let next = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let gate = rt.new_and_gate(LocalityId(0), frontier.len() as u64);
        let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
        for &v in &frontier {
            let owner = owners[v as usize] as u16;
            let g = g.clone();
            let visited = visited.clone();
            let next = next.clone();
            rt.spawn_at(LocalityId(owner % 2), move |ctx| {
                let mut newly = Vec::new();
                {
                    let mut vis = visited.write();
                    for &t in g.neighbors(v) {
                        if vis[t as usize] == u32::MAX {
                            vis[t as usize] = depth;
                            newly.push(t);
                        }
                    }
                }
                next.lock().extend(newly);
                // The gate is the last step: release our `next` clone
                // first so the driver's `Arc::try_unwrap` cannot race a
                // still-alive clone after the gate fires.
                drop(next);
                ctx.trigger_value(gate, parallex::core::action::Value::unit());
            });
        }
        rt.wait_future(gate_fut).unwrap();
        frontier = std::sync::Arc::try_unwrap(next).unwrap().into_inner();
    }
    let levels_px = visited.read().clone();
    assert_eq!(levels_px, levels_seq);
    rt.shutdown();
}
