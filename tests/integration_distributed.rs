//! Two-OS-process integration tests over the TCP transport.
//!
//! The test binary re-executes itself as the second rank
//! (`dist_child_entry` is a no-op unless `PX_DIST_MODE` is set), so the
//! "cluster" is real: two processes, one locality each, loopback TCP,
//! the bootstrap barrier, and — in the kill test — a peer that vanishes
//! mid-flight.

use parallex::core::prelude::*;
use std::io::Read;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Generous bound: a genuine hang hits this, a delivered fault never does.
const BOUND: Duration = Duration::from_secs(20);

struct Square;
impl Action for Square {
    const NAME: &'static str = "dist/square";
    type Args = u64;
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, n: u64) -> u64 {
        n * n
    }
}

/// Reserve loopback addresses by binding ephemeral ports and dropping
/// the listeners (the tiny reuse race is acceptable in tests).
fn free_addrs(n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            format!("127.0.0.1:{}", l.local_addr().unwrap().port())
        })
        .collect()
}

/// Return this rank's slice of a trace: every locally recorded event of
/// the id, in recording order. The parent merges it with its own dump
/// for a cross-rank causal replay.
struct Slice;
impl Action for Slice {
    const NAME: &'static str = "dist/trace-slice";
    type Args = u64;
    type Out = Vec<TraceEvent>;
    fn execute(ctx: &mut Ctx<'_>, _t: Gid, trace: u64) -> Vec<TraceEvent> {
        ctx.trace_dump().filter(trace).events
    }
}

fn build_rt(rank: u16, addrs: Vec<String>, batched: bool, traced: bool, metered: bool) -> Runtime {
    let mut cfg = Config::small(addrs.len(), 1).with_tcp(rank, addrs);
    if batched {
        // Batching exercises coalesced checksummed frames over the
        // socket; the balancer (telemetry-only across processes)
        // exercises the control-plane priority lane.
        cfg = cfg
            .with_max_batch_parcels(16)
            .with_flush_interval(Duration::from_micros(500))
            .with_gossip_interval(Duration::from_millis(5));
    }
    if traced {
        cfg = cfg.with_trace_sampling(1);
    }
    if metered {
        cfg = cfg.with_metrics(true);
    }
    RuntimeBuilder::new(cfg)
        .register::<Square>()
        .register::<Slice>()
        .build()
        .unwrap()
}

fn spawn_child(mode: &str, addrs: &[String]) -> Child {
    spawn_child_at(mode, addrs, 1)
}

/// Like [`spawn_child`], but with the child's stdout piped back so the
/// parent can read what it publishes (the `names` mode).
fn spawn_child_piped(mode: &str, addrs: &[String]) -> Child {
    Command::new(std::env::current_exe().unwrap())
        .args(["dist_child_entry", "--exact", "--nocapture"])
        .env("PX_DIST_MODE", mode)
        .env("PX_DIST_ADDRS", addrs.join(","))
        .env("PX_DIST_RANK", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child rank")
}

fn spawn_child_at(mode: &str, addrs: &[String], rank: u16) -> Child {
    Command::new(std::env::current_exe().unwrap())
        .args(["dist_child_entry", "--exact", "--nocapture"])
        .env("PX_DIST_MODE", mode)
        .env("PX_DIST_ADDRS", addrs.join(","))
        .env("PX_DIST_RANK", rank.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child rank")
}

/// The second rank's body. A no-op under a normal test run; the parent
/// tests re-execute this binary with `PX_DIST_MODE` set.
#[test]
fn dist_child_entry() {
    let Ok(mode) = std::env::var("PX_DIST_MODE") else {
        return;
    };
    let addrs: Vec<String> = std::env::var("PX_DIST_ADDRS")
        .expect("child needs PX_DIST_ADDRS")
        .split(',')
        .map(String::from)
        .collect();
    let rank: u16 = std::env::var("PX_DIST_RANK")
        .map(|r| r.parse().expect("numeric rank"))
        .unwrap_or(1);
    let rt = build_rt(
        rank,
        addrs,
        mode.starts_with("serve"),
        mode == "serve-trace",
        mode == "serve-metrics",
    );
    match mode.as_str() {
        // Vanish right after the barrier, without shutdown: sockets die
        // with the process, like a crashed node.
        "crash" => std::process::exit(0),
        // Register a gid under a process-scoped name at this rank,
        // publish the full path on stdout, then serve until the parent
        // closes stdin.
        "names" => {
            let owner = rt.create_process(LocalityId(rank));
            let data = rt.new_data_at(LocalityId(rank), vec![0x5A; 16]);
            let full = owner
                .register_name(&rt, "svc", data)
                .expect("register child-side name");
            use std::io::Write;
            println!("{full} {:x}", data.0);
            // Stdout is a pipe here (block-buffered): flush, or the
            // parent blocks forever waiting for this line.
            std::io::stdout().flush().expect("publish name line");
            let mut sink = String::new();
            let _ = std::io::stdin().read_to_string(&mut sink);
            rt.shutdown();
        }
        // Serve parcels until the parent closes our stdin.
        _ => {
            let mut sink = String::new();
            let _ = std::io::stdin().read_to_string(&mut sink);
            rt.shutdown();
        }
    }
}

/// Acceptance: a 2-process TCP run completes a spawn/await workload
/// end-to-end — action parcels spawn threads at the remote rank, local
/// futures await the results, the continuation parcels cross back.
#[test]
fn two_process_spawn_await_workload_completes() {
    let addrs = free_addrs(2);
    let mut child = spawn_child("serve", &addrs);
    let rt = build_rt(0, addrs, true, false, false);
    const N: u64 = 200;
    let futs: Vec<(u64, FutureRef<u64>)> = (0..N)
        .map(|i| {
            let fut = rt.new_future::<u64>(LocalityId(0));
            rt.send_action::<Square>(
                Gid::locality_root(LocalityId(1)),
                i,
                Continuation::set(fut.gid()),
            )
            .unwrap();
            (i, fut)
        })
        .collect();
    for (i, fut) in futs {
        let got = rt
            .wait_future_timeout(fut, BOUND)
            .unwrap()
            .expect("remote result within the bound");
        assert_eq!(got, i * i);
    }
    let stats = rt.stats();
    let peer = stats
        .transport
        .peers
        .iter()
        .find(|p| p.peer == 1)
        .expect("peer stats for rank 1");
    // Stream messages, not parcels: coalescing packs many parcels per
    // frame, so this is well below N on a batched run.
    assert!(peer.msgs_sent > 0, "outbound messages: {}", peer.msgs_sent);
    assert!(peer.msgs_recv > 0, "continuations came back over TCP");
    assert!(peer.bytes_sent > 0 && peer.bytes_recv > 0);
    assert!(
        peer.frames_sent > 0,
        "a batched run should have coalesced frames"
    );
    assert_eq!(stats.total().dead_parcels, 0, "healthy run, no deaths");
    // Balancer gossip from the peer rank arrives over the TCP control
    // lane and is merged here (telemetry-only across processes).
    let t0 = Instant::now();
    while rt.stats().total().gossip_parcels == 0 {
        assert!(t0.elapsed() < BOUND, "no gossip ever crossed the wire");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Closing the child's stdin tells it to shut down; it must exit 0.
    drop(child.stdin.take());
    let status = child.wait().unwrap();
    assert!(status.success(), "child rank failed: {status:?}");
    rt.shutdown();
}

/// Acceptance: `cluster_metrics()` across two real OS processes pulls
/// rank 1's histograms over the control lane and merges them with rank
/// 0's — the merged total equals the sum of the per-rank counts and the
/// quantiles of every instrument are monotone. Clocks are never
/// compared across ranks: each histogram holds durations measured on
/// its own rank, and merging adds bucket counts, not timestamps.
#[test]
fn two_process_cluster_metrics_merges_per_rank_histograms() {
    let addrs = free_addrs(2);
    let mut child = spawn_child("serve-metrics", &addrs);
    let rt = build_rt(0, addrs, true, false, true);
    const N: u64 = 64;
    for i in 0..N {
        let fut = rt.new_future::<u64>(LocalityId(0));
        rt.send_action::<Square>(
            Gid::locality_root(LocalityId(1)),
            i,
            Continuation::set(fut.gid()),
        )
        .unwrap();
        let got = rt
            .wait_future_timeout(fut, BOUND)
            .unwrap()
            .expect("remote result within the bound");
        assert_eq!(got, i * i);
    }
    let cluster = rt.cluster_metrics().expect("pull over the control lane");
    assert_eq!(cluster.per_rank.len(), 2, "one snapshot per rank");
    let per_rank_total: u64 = cluster
        .per_rank
        .iter()
        .map(|(_, snap)| snap.total_count())
        .sum();
    assert_eq!(
        cluster.merged.total_count(),
        per_rank_total,
        "the merge is lossless"
    );
    for (rank, snap) in &cluster.per_rank {
        assert!(snap.total_count() > 0, "rank {rank} recorded nothing");
    }
    for inst in Instrument::ALL {
        let h = cluster.merged.get(inst);
        let (p50, p99, p999) = (h.quantile(0.50), h.quantile(0.99), h.quantile(0.999));
        assert!(
            p50 <= p99 && p99 <= p999,
            "{}: p50={p50} p99={p99} p999={p999}",
            inst.name()
        );
    }
    // The remote rank executed every Square action under its own
    // registry; the pull carried that across the wire.
    assert!(cluster.merged.get(Instrument::ExecuteUser).count >= N);
    drop(child.stdin.take());
    assert!(child.wait().unwrap().success());
    rt.shutdown();
}

/// Acceptance: killing one peer mid-flight resolves remote waiters with
/// `PxError::Fault` (`FaultCause::Transport`) in bounded time.
#[test]
fn killing_a_peer_resolves_waiters_with_fault_in_bounded_time() {
    let addrs = free_addrs(2);
    let mut child = spawn_child("crash", &addrs);
    // The barrier passes (the child builds its runtime before exiting);
    // right after, the peer is gone.
    let rt = build_rt(0, addrs, false, false, false);
    let deadline = Instant::now() + BOUND;
    let fault = loop {
        let fut = rt.new_future::<u64>(LocalityId(0));
        rt.send_action::<Square>(
            Gid::locality_root(LocalityId(1)),
            7,
            Continuation::set(fut.gid()),
        )
        .unwrap();
        match rt.wait_future_timeout(fut, Duration::from_millis(200)) {
            // The send raced the child's last breath and was answered,
            // or the loss is not detected yet: keep the workload going.
            Ok(Some(_)) | Ok(None) => {}
            Err(PxError::Fault(f)) => break f,
            Err(e) => panic!("unexpected error: {e:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "peer death never resolved a waiter"
        );
    };
    assert_eq!(fault.cause, FaultCause::Transport, "{fault}");
    assert!(rt.stats().total().dead_transport > 0);
    let _ = child.wait();
    rt.shutdown();
}

/// The event-loop transport's headline invariant, measured across real
/// OS processes: this rank's thread count is **flat** as the mesh grows
/// from 1 peer to 7 — the transport always runs exactly one I/O thread,
/// never a thread (pair) per peer.
#[test]
fn thread_count_stays_flat_from_one_peer_to_seven() {
    fn total_threads() -> usize {
        std::fs::read_dir("/proc/self/task")
            .expect("linux procfs")
            .count()
    }
    fn tcp_threads() -> usize {
        std::fs::read_dir("/proc/self/task")
            .expect("linux procfs")
            .filter_map(|t| {
                let name = std::fs::read_to_string(t.ok()?.path().join("comm")).ok()?;
                name.starts_with("px-tcp").then_some(())
            })
            .count()
    }
    // Run one mesh of each size, pushing a round of real traffic to
    // every peer so all connections are live when we count.
    let mut counts = Vec::new();
    for ranks in [2usize, 8] {
        let addrs = free_addrs(ranks);
        let mut children: Vec<Child> = (1..ranks as u16)
            .map(|r| spawn_child_at("serve", &addrs, r))
            .collect();
        let rt = build_rt(0, addrs, true, false, false);
        for r in 1..ranks as u16 {
            let fut = rt.new_future::<u64>(LocalityId(0));
            rt.send_action::<Square>(
                Gid::locality_root(LocalityId(r)),
                u64::from(r),
                Continuation::set(fut.gid()),
            )
            .unwrap();
            let got = rt
                .wait_future_timeout(fut, BOUND)
                .unwrap()
                .expect("remote result within the bound");
            assert_eq!(got, u64::from(r) * u64::from(r));
        }
        assert_eq!(
            tcp_threads(),
            1,
            "exactly one transport I/O thread at {ranks} ranks"
        );
        counts.push(total_threads());
        for child in &mut children {
            drop(child.stdin.take());
        }
        for mut child in children {
            assert!(child.wait().unwrap().success());
        }
        rt.shutdown();
    }
    assert_eq!(
        counts[0], counts[1],
        "process thread count must not grow with peers: {counts:?}"
    );
}

/// Closure spawns cannot cross the process boundary: they die loudly
/// (dead-letter + `dead_transport`) instead of hanging a queue nobody
/// drains.
#[test]
fn remote_closure_spawn_dies_loudly() {
    let addrs = free_addrs(2);
    let mut child = spawn_child("serve", &addrs);
    let observed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let seen = observed.clone();
    let mut cfg = Config::small(2, 1).with_tcp(0, addrs);
    cfg.wire = WireModel::instant();
    let rt = RuntimeBuilder::new(cfg)
        .register::<Square>()
        .on_dead_letter(move |f| {
            if f.cause == FaultCause::Transport {
                seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        })
        .build()
        .unwrap();
    rt.spawn_at(LocalityId(1), |_| {
        unreachable!("closure must not run in another process");
    });
    let t0 = Instant::now();
    while observed.load(std::sync::atomic::Ordering::SeqCst) == 0 {
        assert!(t0.elapsed() < BOUND, "loud drop never reported");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(rt.stats().total().dead_transport >= 1);
    drop(child.stdin.take());
    let _ = child.wait();
    rt.shutdown();
}

/// Tentpole acceptance: `migrate_data` across real OS processes — create
/// at rank 0, migrate to rank 1, read the bytes back over the wire,
/// migrate home, read locally again. The split-phase protocol (install
/// at dest → flip the home directory → remove at source) keeps the
/// object served at every instant, so neither read can miss.
#[test]
fn cross_rank_migrate_data_round_trip() {
    let addrs = free_addrs(2);
    let mut child = spawn_child("serve", &addrs);
    let rt = build_rt(0, addrs, false, false, false);
    let payload = vec![0xAB; 512];
    let gid = rt.new_data_at(LocalityId(0), payload.clone());

    // Outbound: rank 0 initiates, rank 1 installs the bytes.
    rt.migrate_data(gid, LocalityId(1))
        .expect("outbound migration");
    assert_eq!(
        rt.read_data(gid).expect("remote read"),
        payload,
        "DATA_GET over TCP after the move"
    );

    // Inbound: the AGAS_MIGRATE chases to rank 1, which runs the same
    // protocol back toward the birthplace.
    rt.migrate_data(gid, LocalityId(0))
        .expect("inbound migration");
    assert_eq!(rt.read_data(gid).expect("local read"), payload);

    let stats = rt.stats();
    assert!(
        stats.migrations_manual >= 1,
        "rank 0 initiated the outbound move: {}",
        stats.migrations_manual
    );
    drop(child.stdin.take());
    assert!(child.wait().unwrap().success());
    rt.shutdown();
}

/// Process-scoped names are cluster-visible: the child registers a gid
/// under its own process's `/proc/...` prefix, and the parent resolves
/// the full path from the other rank — the local miss routes a
/// `__sys/name_lookup` to the process's home rank. An unbound name
/// under the same remote prefix faults loudly instead of hanging.
#[test]
fn process_scoped_names_resolve_across_ranks() {
    use std::io::BufRead;
    let addrs = free_addrs(2);
    let mut child = spawn_child_piped("names", &addrs);
    let rt = build_rt(0, addrs, false, false, false);
    // The child is a libtest binary: its harness chatter shares stdout
    // (and even the same line — libtest prints `test ... ` without a
    // newline before running), so scan for the published `/proc/` path.
    let mut out = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    let published = loop {
        line.clear();
        assert!(
            out.read_line(&mut line).expect("child stdout readable") > 0,
            "child exited without publishing a name"
        );
        if let Some(i) = line.find("/proc/") {
            break line[i..].to_string();
        }
    };
    let mut parts = published.split_whitespace();
    let full = parts.next().expect("full name");
    let expect = Gid(u64::from_str_radix(parts.next().expect("gid hex"), 16).unwrap());
    assert!(full.starts_with("/proc/"), "process-scoped path: {full}");
    let got = rt.lookup_name(full).expect("name resolves from rank 0");
    assert_eq!(got, expect);
    assert_eq!(got.birthplace(), LocalityId(1), "bound at the child rank");
    let (prefix, _) = full.rsplit_once('/').expect("scoped path");
    match rt.lookup_name(&format!("{prefix}/absent")) {
        Err(PxError::Fault(f)) => assert_eq!(f.cause, FaultCause::HandlerError, "{f:?}"),
        other => panic!("unbound remote name must fault, got {other:?}"),
    }
    drop(child.stdin.take());
    assert!(child.wait().expect("join child").success());
    rt.shutdown();
}

/// Regression for the cross-rank migration deadlock: `migrate_lock` is
/// never held across an RTT, so concurrent migrations of the SAME
/// object from several driver threads — deliberately ping-ponging the
/// object between the ranks — all complete instead of wedging the
/// scheduler, and the object stays readable afterwards.
#[test]
fn concurrent_cross_rank_migrations_of_same_object_settle() {
    let addrs = free_addrs(2);
    let mut child = spawn_child("serve", &addrs);
    let rt = build_rt(0, addrs, false, false, false);
    let payload = b"contended".to_vec();
    let gid = rt.new_data_at(LocalityId(0), payload.clone());
    std::thread::scope(|s| {
        for t in 0..4u16 {
            let rt = &rt;
            s.spawn(move || {
                for i in 0..6u16 {
                    // Alternating destinations exercise the pin, the
                    // deferral queue, and the bounded chase at once.
                    let to = LocalityId((t + i) % 2);
                    match rt.migrate_data(gid, to) {
                        Ok(()) => {}
                        // A request that chased through too many
                        // mid-flight moves dies loudly at the hop cap
                        // instead of hanging — acceptable under this
                        // deliberately pathological contention.
                        Err(PxError::Fault(_)) => {}
                        Err(e) => panic!("unexpected error: {e:?}"),
                    }
                }
            });
        }
    });
    // The store settled: the object migrates home and reads clean.
    rt.migrate_data(gid, LocalityId(0)).expect("settle home");
    assert_eq!(
        rt.read_data(gid).expect("readable after the storm"),
        payload
    );
    drop(child.stdin.take());
    assert!(child.wait().unwrap().success());
    rt.shutdown();
}

/// Satellite acceptance: killing the rank that serves an object
/// resolves a remote read AND a migration attempt as `PxError::Fault`
/// (`FaultCause::Transport`) in bounded time — the driver-side
/// round-trips ride the same dead-letter path as every other parcel,
/// so nothing blocks forever on a dead owner.
#[test]
fn killing_the_owner_faults_reads_and_migrations_in_bounded_time() {
    let addrs = free_addrs(2);
    let mut child = spawn_child("serve", &addrs);
    let rt = build_rt(0, addrs, false, false, false);
    let gid = rt.new_data_at(LocalityId(0), vec![7; 32]);
    rt.migrate_data(gid, LocalityId(1))
        .expect("move to the doomed rank");
    child.kill().expect("kill owner rank");
    let _ = child.wait();
    // Drive the dead socket until the transport notices (a request
    // already written into the kernel buffer when the peer died is lost
    // without a diagnosis — same retry pattern as the crash test).
    let deadline = Instant::now() + BOUND;
    loop {
        let fut = rt.new_future::<u64>(LocalityId(0));
        rt.send_action::<Square>(
            Gid::locality_root(LocalityId(1)),
            7,
            Continuation::set(fut.gid()),
        )
        .unwrap();
        match rt.wait_future_timeout(fut, Duration::from_millis(200)) {
            Ok(Some(_)) | Ok(None) => {}
            Err(PxError::Fault(_)) => break,
            Err(e) => panic!("unexpected error: {e:?}"),
        }
        assert!(Instant::now() < deadline, "owner death never detected");
    }
    // The peer is known dead: the blocking driver calls fault promptly.
    let t0 = Instant::now();
    let read_fault = match rt.read_data(gid) {
        Err(PxError::Fault(f)) => f,
        other => panic!("read against a dead owner: {other:?}"),
    };
    assert_eq!(read_fault.cause, FaultCause::Transport, "{read_fault}");
    let mig_fault = match rt.migrate_data(gid, LocalityId(0)) {
        Err(PxError::Fault(f)) => f,
        other => panic!("migration against a dead owner: {other:?}"),
    };
    assert_eq!(mig_fault.cause, FaultCause::Transport, "{mig_fault}");
    assert!(
        t0.elapsed() < BOUND,
        "faults must resolve in bounded time, took {:?}",
        t0.elapsed()
    );
    rt.shutdown();
}

/// Tentpole acceptance across real OS processes: one traced request is
/// replayed end to end from BOTH ranks — the send and its network
/// submission at rank 0, the receive and dispatch at rank 1 — and when
/// rank 1 is then killed mid-flight, the same trace id captures the
/// transport fault and the waiter's poisoning. The merged dump is
/// causally ordered without ever comparing clocks across processes.
#[test]
fn killed_peer_leaves_a_causally_ordered_cross_rank_trace() {
    let addrs = free_addrs(2);
    let mut child = spawn_child("serve-trace", &addrs);
    let rt = build_rt(0, addrs, false, true, false);

    // One explicitly traced request, answered by the remote rank.
    let trace = rt.new_trace_id().expect("tracing is on");
    let fut = rt.new_future::<u64>(LocalityId(0));
    rt.send_action_traced::<Square>(
        Gid::locality_root(LocalityId(1)),
        9,
        Continuation::set(fut.gid()),
        trace,
    )
    .unwrap();
    assert_eq!(
        rt.wait_future_timeout(fut, BOUND)
            .unwrap()
            .expect("remote result within the bound"),
        81
    );

    // Fetch rank 1's slice of the trace in-band (an untraced action so
    // the fetch doesn't pollute the timeline). Recording races the
    // reply, so retry until the remote dispatch has landed in the ring.
    let deadline = Instant::now() + BOUND;
    let remote = loop {
        let fut = rt.new_future::<Vec<TraceEvent>>(LocalityId(0));
        rt.send_action::<Slice>(
            Gid::locality_root(LocalityId(1)),
            trace,
            Continuation::set(fut.gid()),
        )
        .unwrap();
        let events = rt
            .wait_future_timeout(fut, BOUND)
            .unwrap()
            .expect("slice within the bound");
        if events
            .iter()
            .any(|e| e.kind == TraceEventKind::ParcelDispatch)
            && events.iter().any(|e| e.kind == TraceEventKind::NetRecv)
        {
            break events;
        }
        assert!(
            Instant::now() < deadline,
            "remote slice never showed the dispatch: {events:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(
        remote.iter().all(|e| e.trace == trace && e.domain == 1),
        "the remote slice is rank 1's view of this trace: {remote:?}"
    );

    // Kill the peer and drive the same trace id into the dead socket
    // until the transport fault poisons a waiter.
    child.kill().expect("kill child rank");
    let _ = child.wait();
    let deadline = Instant::now() + BOUND;
    let fault = loop {
        let fut = rt.new_future::<u64>(LocalityId(0));
        rt.send_action_traced::<Square>(
            Gid::locality_root(LocalityId(1)),
            7,
            Continuation::set(fut.gid()),
            trace,
        )
        .unwrap();
        match rt.wait_future_timeout(fut, Duration::from_millis(200)) {
            Ok(Some(_)) | Ok(None) => {}
            Err(PxError::Fault(f)) => break f,
            Err(e) => panic!("unexpected error: {e:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "peer death never resolved a waiter"
        );
    };
    assert_eq!(fault.cause, FaultCause::Transport, "{fault}");

    // Ring writes race the waiter's wakeup (recording is off the hot
    // path): give the worker a bounded moment to land the fault events.
    let deadline = Instant::now() + BOUND;
    let local = loop {
        let local = rt.trace_dump_for(trace);
        let has = |kind| local.events.iter().any(|e: &TraceEvent| e.kind == kind);
        if has(TraceEventKind::NetFault) && has(TraceEventKind::LcoPoison) {
            break local;
        }
        assert!(
            Instant::now() < deadline,
            "fault events never landed:\n{}",
            local.render()
        );
        std::thread::sleep(Duration::from_millis(1));
    };

    // Merge both ranks' slices: the replay must interleave the domains
    // in causal order.
    let merged = local.merge(TraceDump::new(remote));
    let pos = |kind: TraceEventKind, domain: u16| {
        merged
            .events
            .iter()
            .position(|e| e.kind == kind && e.domain == domain)
    };
    let submit0 = pos(TraceEventKind::NetSubmit, 0).expect("rank 0 recorded the submission");
    let recv1 = pos(TraceEventKind::NetRecv, 1).expect("rank 1 recorded the receive");
    let dispatch1 = pos(TraceEventKind::ParcelDispatch, 1).expect("rank 1 recorded the dispatch");
    assert!(
        submit0 < recv1 && recv1 < dispatch1,
        "send -> recv -> dispatch across the process boundary:\n{}",
        merged.render()
    );
    let fault0 = pos(TraceEventKind::NetFault, 0).expect("rank 0 recorded the transport fault");
    let poison0 = pos(TraceEventKind::LcoPoison, 0).expect("rank 0 recorded the waiter poison");
    assert!(
        fault0 < poison0,
        "the transport fault precedes the waiter's poisoning:\n{}",
        merged.render()
    );
    assert!(
        merged.events.iter().all(|e| e.trace == trace),
        "one request, one id, both ranks"
    );
    rt.shutdown();
}
