//! Property-based tests on the core data structures and invariants.

use parallex::core::action::{ActionId, Value};
use parallex::core::agas::Agas;
use parallex::core::gid::{Gid, GidKind, LocalityId};
use parallex::core::lco::LcoCore;
use parallex::core::parcel::{ContStep, Continuation, Parcel};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum WireEnum {
    Unit,
    Tuple(u32, i64),
    Struct { name: String, flags: Vec<bool> },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WireStruct {
    a: u8,
    b: i16,
    c: u64,
    d: i128,
    f: f64,
    s: String,
    v: Vec<u32>,
    o: Option<Box<WireEnum>>,
    pairs: Vec<(u16, String)>,
}

// proptest-derive is not in the offline crate set; strategies are spelled
// out by hand.
fn wire_enum() -> impl Strategy<Value = WireEnum> {
    prop_oneof![
        Just(WireEnum::Unit),
        (any::<u32>(), any::<i64>()).prop_map(|(a, b)| WireEnum::Tuple(a, b)),
        (
            "[a-z]{0,12}",
            proptest::collection::vec(any::<bool>(), 0..8)
        )
            .prop_map(|(name, flags)| WireEnum::Struct { name, flags }),
    ]
}

fn wire_struct() -> impl Strategy<Value = WireStruct> {
    (
        any::<u8>(),
        any::<i16>(),
        any::<u64>(),
        any::<i128>(),
        any::<f64>(),
        "[ -~]{0,16}",
        proptest::collection::vec(any::<u32>(), 0..16),
        proptest::option::of(wire_enum().prop_map(Box::new)),
        proptest::collection::vec((any::<u16>(), "[a-z]{0,6}".prop_map(String::from)), 0..6),
    )
        .prop_map(|(a, b, c, d, f, s, v, o, pairs)| WireStruct {
            a,
            b,
            c,
            d,
            f,
            s,
            v,
            o,
            pairs,
        })
}

proptest! {
    // ---- wire format -----------------------------------------------------

    #[test]
    fn wire_roundtrips_arbitrary_structs(x in wire_struct()) {
        let bytes = px_roundtrip(&x);
        prop_assert!(bytes.is_ok());
    }

    #[test]
    fn wire_roundtrips_nested_options(x in any::<Option<Option<Vec<Option<u8>>>>>()) {
        prop_assert!(px_roundtrip(&x).is_ok());
    }

    #[test]
    fn wire_rejects_truncation(x in wire_struct(), cut in 1usize..8) {
        let bytes = parallex::wire::to_bytes(&x).unwrap();
        if bytes.len() >= cut {
            let r: Result<WireStruct, _> =
                parallex::wire::from_bytes(&bytes[..bytes.len() - cut]);
            // Truncation must never produce an equal value silently.
            if let Ok(y) = r {
                prop_assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn wire_floats_roundtrip_bitwise(bits in any::<u64>()) {
        let f = f64::from_bits(bits);
        let bytes = parallex::wire::to_bytes(&f).unwrap();
        let g: f64 = parallex::wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(g.to_bits(), bits);
    }

    // ---- GIDs --------------------------------------------------------------

    #[test]
    fn gid_pack_unpack(loc in 0u16.., seq in 0u64..(1 << 44)) {
        for kind in [GidKind::Data, GidKind::Lco, GidKind::Process,
                     GidKind::Echo, GidKind::Hardware, GidKind::User] {
            let g = Gid::new(LocalityId(loc), kind, seq);
            prop_assert_eq!(g.birthplace(), LocalityId(loc));
            prop_assert_eq!(g.kind(), kind);
            prop_assert_eq!(g.seq(), seq);
        }
    }

    // ---- parcels -----------------------------------------------------------

    #[test]
    fn parcel_roundtrips(
        dest_loc in 0u16..100,
        seq in 0u64..1000,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        steps in proptest::collection::vec(0u8..3, 0..4),
        hops in 0u8..16,
        staged in any::<bool>(),
        has_proc in any::<bool>(),
    ) {
        let cont = Continuation {
            steps: steps
                .iter()
                .map(|&t| match t {
                    0 => ContStep::SetLco(Gid::new(LocalityId(1), GidKind::Lco, 5)),
                    1 => ContStep::Call {
                        action: ActionId::of("prop/next"),
                        target: Gid::new(LocalityId(2), GidKind::Data, 9),
                    },
                    _ => ContStep::Contribute(Gid::new(LocalityId(3), GidKind::Lco, 77)),
                })
                .collect(),
        };
        let mut p = Parcel::new(
            Gid::new(LocalityId(dest_loc), GidKind::Data, seq),
            ActionId::of("prop/action"),
            Value::from_bytes(payload),
            cont,
        );
        p.hops = hops;
        p.staged = staged;
        if has_proc {
            p.process = Some(Gid::new(LocalityId(0), GidKind::Process, 3));
        }
        let q = Parcel::decode(&p.encode()).unwrap();
        prop_assert_eq!(q.dest, p.dest);
        prop_assert_eq!(q.action, p.action);
        prop_assert_eq!(&q.cont, &p.cont);
        prop_assert_eq!(q.hops, p.hops);
        prop_assert_eq!(q.staged, p.staged);
        prop_assert_eq!(q.process, p.process);
        prop_assert_eq!(q.payload.bytes(), p.payload.bytes());
        prop_assert_eq!(p.wire_size(), p.encode().len());
    }

    // ---- LCO state machines --------------------------------------------------

    #[test]
    fn and_gate_fires_exactly_at_n(n in 1u64..64) {
        let mut gate = LcoCore::new_and_gate(Gid::new(LocalityId(0), GidKind::Lco, 1), n);
        for k in 0..n {
            prop_assert_eq!(gate.is_ready(), false, "fired early at {}", k);
            gate.trigger(Value::unit()).unwrap();
        }
        prop_assert!(gate.is_ready());
    }

    #[test]
    fn reduce_is_order_insensitive(mut xs in proptest::collection::vec(0u64..1000, 1..20)) {
        let fold = |acc: Value, v: Value| {
            let a: u64 = acc.decode().unwrap();
            let b: u64 = v.decode().unwrap();
            Value::encode(&(a + b)).unwrap()
        };
        let sum: u64 = xs.iter().sum();
        let gid = Gid::new(LocalityId(0), GidKind::Lco, 2);
        // Forward order.
        let mut r = LcoCore::new_reduce(gid, xs.len() as u64, Value::encode(&0u64).unwrap(), Box::new(fold));
        for &x in &xs {
            r.contribute(Value::encode(&x).unwrap()).unwrap();
        }
        prop_assert_eq!(r.value().unwrap().decode::<u64>().unwrap(), sum);
        // Reversed order.
        xs.reverse();
        let mut r = LcoCore::new_reduce(gid, xs.len() as u64, Value::encode(&0u64).unwrap(), Box::new(fold));
        for &x in &xs {
            r.contribute(Value::encode(&x).unwrap()).unwrap();
        }
        prop_assert_eq!(r.value().unwrap().decode::<u64>().unwrap(), sum);
    }

    #[test]
    fn semaphore_never_over_grants(permits in 1u64..8, acquires in 1usize..32) {
        let mut sem = LcoCore::new_semaphore(Gid::new(LocalityId(0), GidKind::Lco, 3), permits);
        let mut granted = 0usize;
        for _ in 0..acquires {
            let acts = sem
                .acquire(parallex::core::lco::Waiter::Cont(Continuation::none()))
                .unwrap();
            granted += acts.len();
        }
        prop_assert!(granted as u64 <= permits);
        // Each release grants exactly one queued waiter while any remain.
        let queued = acquires.saturating_sub(granted);
        let mut released = 0usize;
        for _ in 0..queued {
            released += sem.release().len();
        }
        prop_assert_eq!(released, queued);
    }

    #[test]
    fn poisoned_lco_releases_all_waiter_kinds_exactly_once(
        kind in 0usize..5,
        n in 1u64..16,
        before in proptest::collection::vec(0usize..3, 0..6),
        after in proptest::collection::vec(0usize..3, 0..6),
    ) {
        use parallex::core::error::{Fault, FaultCause};
        use parallex::core::lco::{ExtSlot, Waiter};
        use std::sync::Arc;

        let gid = Gid::new(LocalityId(0), GidKind::Lco, 9);
        let mk_waiter = |k: usize| match k {
            0 => Waiter::Cont(Continuation::set(gid)),
            1 => Waiter::External(Arc::new(ExtSlot::default())),
            _ => Waiter::Depleted(Box::new(|_ctx, _v| {})),
        };
        let mut lco = match kind {
            0 => LcoCore::new_future(gid),
            1 => LcoCore::new_and_gate(gid, n),
            2 => LcoCore::new_reduce(gid, n, Value::encode(&0u64).unwrap(),
                    Box::new(|a, _| a)),
            3 => LcoCore::new_dataflow(gid, n as usize,
                    Box::new(|_| Value::unit())),
            _ => LcoCore::new_semaphore(gid, 0),
        };
        // Register waiters of every kind; semaphores queue via acquire.
        let mut registered = 0usize;
        for &k in &before {
            let acts = if kind == 4 {
                lco.acquire(mk_waiter(k)).unwrap()
            } else {
                lco.add_waiter(mk_waiter(k))
            };
            prop_assert!(acts.is_empty(), "no LCO here fires before poison");
            registered += 1;
        }
        let fault = Fault::new(FaultCause::Panic, ActionId::of("p/dead"), gid, "x");
        // Poison releases every registered waiter exactly once, each with
        // the fault.
        let acts = lco.poison(fault.clone());
        prop_assert_eq!(acts.len(), registered);
        for (_, v) in &acts {
            prop_assert_eq!(v.fault().unwrap(), fault.clone());
        }
        // A second poison releases nothing (exactly-once).
        prop_assert!(lco.poison(fault.clone()).is_empty());
        prop_assert!(lco.is_poisoned());
        // Every future waiter resolves immediately with the same fault.
        for &k in &after {
            let acts = if kind == 4 {
                lco.acquire(mk_waiter(k)).unwrap()
            } else {
                lco.add_waiter(mk_waiter(k))
            };
            prop_assert_eq!(acts.len(), 1);
            prop_assert_eq!(acts[0].1.fault().unwrap(), fault.clone());
        }
    }

    #[test]
    fn fault_values_roundtrip_the_wire(
        cause in 0u8..5,
        action in any::<u64>(),
        dest in any::<u64>(),
        msg in "[ -~]{0,64}",
    ) {
        use parallex::core::error::{Fault, FaultCause};
        let f = Fault::new(FaultCause::from_code(cause), ActionId(action), Gid(dest), msg);
        let p = Parcel::new(
            Gid::new(LocalityId(0), GidKind::Lco, 1),
            ActionId::of("sys/lco_set"),
            Value::error(&f),
            Continuation::none(),
        );
        let q = Parcel::decode(&p.encode()).unwrap();
        prop_assert!(q.payload.is_fault());
        prop_assert_eq!(q.payload.fault().unwrap(), f);
    }

    // ---- hierarchical processes ---------------------------------------------

    /// Quiescence of a random subprocess tree can never be observed with
    /// work still in flight: while a hostage task blocks somewhere in the
    /// tree the root's done-future must not fire, and once the root
    /// reports quiescence every task of every descendant has completed.
    #[test]
    fn hierarchical_quiescence_never_observes_zero_with_work_in_flight(
        fanouts in proptest::collection::vec(1usize..3, 0..3),
        tasks_per_node in 1usize..4,
        hostage_depth_pick in 0usize..100,
    ) {
        use parallex::core::prelude::*;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let rt = RuntimeBuilder::new(Config::small(2, 1)).build().unwrap();
        let finished = Arc::new(AtomicU64::new(0));
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let release_rx = Arc::new(std::sync::Mutex::new(release_rx));

        // Build a chain-of-subprocess tree: level i has `fanouts[i]`
        // children per node is overkill at proptest scale, so each level
        // is one node wide with `fanouts[i]` sibling leaves.
        let root = rt.create_process(LocalityId(0));
        let mut chain = vec![root];
        for &width in &fanouts {
            let parent = *chain.last().unwrap();
            let child = parent.create_subprocess(&rt, LocalityId(1)).unwrap();
            for _ in 1..width {
                // Extra siblings quiesce on their own.
                let sib = parent.create_subprocess(&rt, LocalityId(0)).unwrap();
                sib.finish_root(&rt);
            }
            chain.push(child);
        }
        let mut total = 0u64;
        for proc in &chain {
            for l in 0..2u16 {
                for _ in 0..tasks_per_node {
                    let f = finished.clone();
                    proc.spawn_at(&rt, LocalityId(l), move |_ctx| {
                        f.fetch_add(1, Ordering::SeqCst);
                    });
                    total += 1;
                }
            }
        }
        // One hostage task somewhere in the chain keeps the tree live
        // until the driver releases it.
        let hostage_holder = chain[hostage_depth_pick % chain.len()];
        let rx = release_rx.clone();
        hostage_holder.spawn_at(&rt, LocalityId(0), move |_ctx| {
            rx.lock().unwrap().recv().unwrap();
        });
        for proc in &chain {
            proc.finish_root(&rt);
        }
        // In flight (the hostage is provably unreleased): the root must
        // not report quiescence.
        let early = root
            .done_future()
            .wait_timeout(&rt, std::time::Duration::from_millis(5))
            .unwrap();
        prop_assert!(early.is_none(), "quiescence observed with work in flight");
        release_tx.send(()).unwrap();
        root.done_future()
            .wait_timeout(&rt, std::time::Duration::from_secs(10))
            .unwrap()
            .expect("root quiesced after release");
        // Zero observed ⇒ all work done, at every level.
        prop_assert_eq!(finished.load(Ordering::SeqCst), total);
        for proc in &chain {
            prop_assert_eq!(proc.active(&rt), 0);
        }
        rt.shutdown();
    }

    /// Cancelling a process releases every waiter kind exactly once with
    /// the cancellation fault: external OS threads blocked on owned
    /// futures, depleted threads suspended on them, and done-future
    /// waiters — no waiter hangs and none fires twice.
    #[test]
    fn cancel_releases_every_waiter_kind_exactly_once(
        externals in 1usize..4,
        depleted in 1usize..4,
        done_waiters in 1usize..3,
    ) {
        use parallex::core::prelude::*;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        use std::time::Duration;

        let rt = Arc::new(RuntimeBuilder::new(Config::small(2, 1)).build().unwrap());
        let proc = rt.create_process(LocalityId(0));
        let resumed = Arc::new(AtomicU64::new(0));
        let (tx, rx) = std::sync::mpsc::channel();
        let r2 = resumed.clone();
        let n_dep = depleted;
        proc.spawn_at(&rt, LocalityId(0), move |ctx| {
            let fut = ctx.new_future::<u64>(); // process-owned
            for _ in 0..n_dep {
                let r = r2.clone();
                ctx.when_resolved(fut, move |_ctx, out| {
                    assert!(out.is_err(), "cancel delivers a fault, not a value");
                    r.fetch_add(1, Ordering::SeqCst);
                });
            }
            tx.send(fut).unwrap();
        });
        let fut = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        proc.finish_root(&rt);
        let ext: Vec<_> = (0..externals)
            .map(|_| {
                let rt = rt.clone();
                std::thread::spawn(move || fut.wait_timeout(&rt, Duration::from_secs(10)))
            })
            .collect();
        let dones: Vec<_> = (0..done_waiters)
            .map(|_| {
                let rt = rt.clone();
                std::thread::spawn(move || {
                    proc.done_future().wait_timeout(&rt, Duration::from_secs(10))
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(5));
        proc.cancel(&rt);
        proc.cancel(&rt); // idempotent: second cancel releases nothing new
        for h in ext {
            // Exactly once: the single wait() call returns the fault.
            let f = match h.join().unwrap() {
                Err(PxError::Fault(f)) => f,
                other => panic!("external waiter got {other:?}"),
            };
            prop_assert_eq!(f.cause, FaultCause::Cancelled);
        }
        for h in dones {
            match h.join().unwrap() {
                Err(PxError::Fault(f)) => prop_assert_eq!(f.cause, FaultCause::Cancelled),
                other => panic!("done waiter got {other:?}"),
            }
        }
        // Every depleted thread resumed (with the fault) exactly once.
        let t0 = std::time::Instant::now();
        while resumed.load(Ordering::SeqCst) < depleted as u64 {
            prop_assert!(
                t0.elapsed() < Duration::from_secs(10),
                "depleted threads never resumed"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(2));
        prop_assert_eq!(resumed.load(Ordering::SeqCst), depleted as u64);
        rt.shutdown();
    }

    // ---- AGAS ---------------------------------------------------------------

    #[test]
    fn agas_directory_is_authoritative(
        moves in proptest::collection::vec(0u16..8, 0..20),
    ) {
        let agas = Agas::new(8);
        let g = Gid::new(LocalityId(3), GidKind::Data, 1);
        let mut expected = LocalityId(3);
        for m in moves {
            agas.record_migration(g, LocalityId(m));
            expected = LocalityId(m);
        }
        prop_assert_eq!(agas.authoritative_owner(g), expected);
        // A fresh locality (cold cache) resolves to the authority.
        let r = agas.resolve(LocalityId(7), g);
        prop_assert_eq!(r.owner, expected);
    }

    /// Home-based convergence across simulated ranks: one `Agas`
    /// instance per rank, written exactly as the cross-rank protocol
    /// writes them — destination at install, source at finalize, the
    /// home rank via `DIR_UPDATE`, random bystanders via repair hints.
    /// From any rank, the chase (first hop on the sender's cached
    /// resolution, then each rank's directory; a rank that believes
    /// itself owner without holding the object asks the home rank)
    /// reaches the true owner in at most one hop per rank — every
    /// directory entry points at the owner as of its own write time, so
    /// the chain only moves forward through the migration history.
    #[test]
    fn home_based_directory_converges_from_any_rank(
        moves in proptest::collection::vec(
            (0u16..6, proptest::collection::vec(any::<bool>(), 6..7)),
            1..24,
        ),
    ) {
        const RANKS: u16 = 6;
        let home = 2u16;
        let ranks: Vec<Agas> = (0..RANKS).map(|_| Agas::new(RANKS as usize)).collect();
        let g = Gid::new(LocalityId(home), GidKind::Data, 9);
        let mut owner = home;
        for (to, hints) in moves {
            if to != owner {
                ranks[to as usize].note_owner(g, LocalityId(to)); // install
                ranks[owner as usize].note_owner(g, LocalityId(to)); // finalize
                ranks[home as usize].note_owner(g, LocalityId(to)); // DIR_UPDATE
                owner = to;
            }
            for (r, hint) in hints.iter().enumerate() {
                if *hint {
                    ranks[r].repair_cache(LocalityId(r as u16), g, LocalityId(owner));
                }
            }
        }
        // The home rank's entry is cluster-authoritative at all times.
        prop_assert_eq!(ranks[home as usize].authoritative_owner(g), LocalityId(owner));
        for start in 0..RANKS {
            // Sender side: route on the cached resolution.
            let mut cur = ranks[start as usize].resolve(LocalityId(start), g).owner.0;
            let mut hops = 0u32;
            while cur != owner {
                // Receiver side: the object is absent, forward on this
                // rank's directory — or ask home when the rank believes
                // the object should be here (`remote_dir_lookup`).
                let view = ranks[cur as usize].authoritative_owner(g).0;
                cur = if view == cur {
                    ranks[home as usize].authoritative_owner(g).0
                } else {
                    view
                };
                hops += 1;
                prop_assert!(
                    hops <= u32::from(RANKS),
                    "chase from rank {} did not converge", start
                );
            }
        }
    }

    // ---- histogram -----------------------------------------------------------

    #[test]
    fn histogram_quantiles_bracket_samples(
        xs in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut h = parallex::sim::Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let lo = *xs.iter().min().unwrap() as f64;
        let hi = *xs.iter().max().unwrap() as f64;
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            let v = h.quantile(q);
            // Bucketed estimates stay within a factor-2 envelope of range.
            prop_assert!(v >= (lo / 2.0).floor(), "q{q} = {v} < {lo}");
            prop_assert!(v <= (hi * 2.0).ceil(), "q{q} = {v} > {hi}");
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
    }

    // ---- Morton / AMR ----------------------------------------------------------

    #[test]
    fn morton_is_injective(a in 0u32..4096, b in 0u32..4096, c in 0u32..4096, d in 0u32..4096) {
        prop_assume!((a, b) != (c, d));
        prop_assert_ne!(
            parallex::workloads::amr::morton2(a, b),
            parallex::workloads::amr::morton2(c, d)
        );
    }

    // ---- graphs ------------------------------------------------------------------

    #[test]
    fn csr_preserves_edges(n in 2usize..50, edges in proptest::collection::vec((0u32..40, 0u32..40), 0..100)) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(s, t)| (s % n as u32, t % n as u32))
            .collect();
        let g = parallex::workloads::graphs::Graph::from_edges(n, &edges);
        prop_assert_eq!(g.edges(), edges.len());
        // Every edge is findable from its source.
        for &(s, t) in &edges {
            prop_assert!(g.neighbors(s).contains(&t));
        }
    }

    // ---- metrics histograms ----------------------------------------------

    #[test]
    fn histogram_merge_is_order_invariant_and_lossless(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        use parallex::core::metrics::{Histogram, HistogramSnapshot};
        let (ha, hb) = (Histogram::default(), Histogram::default());
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let (sa, sb) = (ha.snapshot(), hb.snapshot());
        let mut ab = HistogramSnapshot::default();
        ab.merge(&sa);
        ab.merge(&sb);
        let mut ba = HistogramSnapshot::default();
        ba.merge(&sb);
        ba.merge(&sa);
        // Commutative...
        prop_assert_eq!(&ab, &ba);
        // ...and lossless: every bucket count is the exact sum, no
        // sample moved buckets and none vanished.
        prop_assert_eq!(ab.count, (a.len() + b.len()) as u64);
        for (i, &c) in ab.cells.iter().enumerate() {
            prop_assert_eq!(c, sa.cells[i] + sb.cells[i], "cell {} drifted", i);
        }
    }

    #[test]
    fn histogram_quantiles_bound_recorded_values(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        q_milli in 0u32..1001,
    ) {
        use parallex::core::metrics::{bucket_bound, bucket_index, Histogram};
        let q = f64::from(q_milli) / 1000.0;
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let reported = s.quantile(q);
        // The reported quantile is some bucket's inclusive upper bound,
        // and at least ceil(q * n) recorded values fall at or below it
        // (the defining property of a percentile estimate that rounds up
        // to its bucket boundary).
        let rank = ((q * values.len() as f64).ceil() as u64).clamp(1, values.len() as u64);
        let at_or_below = values.iter().filter(|&&v| v <= reported).count() as u64;
        prop_assert!(at_or_below >= rank, "q={} reported={} covers {}/{}", q, reported, at_or_below, rank);
        // And every recorded value sits within its own bucket's bound.
        for &v in &values {
            prop_assert!(v <= bucket_bound(bucket_index(v)));
        }
    }

    // ---- Data Vortex ----------------------------------------------------------------

    #[test]
    fn vortex_delivers_everything_small(
        packets in proptest::collection::vec((0u64..50, 0usize..8, 0usize..8), 1..40),
    ) {
        let inj: Vec<parallex::datavortex::traffic::Injection> = packets
            .into_iter()
            .map(|(cycle, src, dst)| parallex::datavortex::traffic::Injection { cycle, src, dst })
            .collect();
        let cfg = parallex::datavortex::vortex::VortexConfig { levels: 3, angles: 4 };
        let s = parallex::datavortex::vortex::simulate(cfg, &inj, 200_000);
        prop_assert_eq!(s.delivered, s.injected, "lost packets");
    }
}

fn px_roundtrip<T>(x: &T) -> Result<Vec<u8>, String>
where
    T: Serialize + for<'a> Deserialize<'a> + PartialEq + std::fmt::Debug,
{
    let bytes = parallex::wire::to_bytes(x).map_err(|e| e.to_string())?;
    let back: T = parallex::wire::from_bytes(&bytes).map_err(|e| e.to_string())?;
    if &back != x {
        return Err(format!("roundtrip mismatch: {x:?} vs {back:?}"));
    }
    Ok(bytes)
}
