//! Hierarchical-process integration tests: subprocess trees, scoped
//! namespaces, subtree cancellation, and collectives. The cancellation
//! tests are bounded-wait by construction — before cancellation became a
//! first-class exit, every one of them would hang.

use parallex::core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Generous bound: a genuine hang hits this, a delivered fault never does.
const BOUND: Duration = Duration::from_secs(10);

struct CountHere;
impl Action for CountHere {
    const NAME: &'static str = "procs/count_here";
    type Args = u64;
    type Out = u64;
    fn execute(ctx: &mut Ctx<'_>, _t: Gid, x: u64) -> u64 {
        x + u64::from(ctx.here().0)
    }
}

struct Slow;
impl Action for Slow {
    const NAME: &'static str = "procs/slow";
    type Args = u64;
    type Out = ();
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, ns: u64) {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

fn rt(locs: usize) -> Runtime {
    RuntimeBuilder::new(Config::small(locs, 1))
        .register::<CountHere>()
        .register::<Slow>()
        .build()
        .unwrap()
}

fn expect_cancelled<T: std::fmt::Debug>(r: PxResult<Option<T>>) -> Fault {
    match r {
        Err(PxError::Fault(f)) => {
            assert_eq!(f.cause, FaultCause::Cancelled, "{f}");
            f
        }
        Ok(None) => panic!("timed out: cancellation fault was never delivered"),
        other => panic!("expected cancellation fault, got {other:?}"),
    }
}

// ---- hierarchy --------------------------------------------------------------

#[test]
fn parent_quiescence_waits_for_subprocess_trees() {
    let rt = rt(3);
    let root = rt.create_process(LocalityId(0));
    let counter = Arc::new(AtomicU64::new(0));
    // Two children, each with a grandchild; every node spawns leaf work.
    for l in 0..2u16 {
        let child = root.create_subprocess(&rt, LocalityId(l)).unwrap();
        let grand = child.create_subprocess(&rt, LocalityId(l + 1)).unwrap();
        for proc in [&child, &grand] {
            for _ in 0..4 {
                let c = counter.clone();
                proc.spawn_at(&rt, LocalityId(l), move |ctx| {
                    let c = c.clone();
                    // Nested spawn: still part of the same process.
                    ctx.spawn(move |_ctx| {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
            proc.finish_root(&rt);
        }
    }
    root.finish_root(&rt);
    root.done_future()
        .wait_timeout(&rt, BOUND)
        .unwrap()
        .expect("root quiesced");
    // Quiescence of the ROOT implies every descendant's work ran.
    assert_eq!(counter.load(Ordering::SeqCst), 16);
    assert_eq!(root.active(&rt), 0);
    assert_eq!(root.children(&rt).len(), 2);
    let child = root.children(&rt)[0];
    assert_eq!(child.parent(&rt).unwrap().gid(), root.gid());
    rt.shutdown();
}

#[test]
fn subprocess_of_cancelled_parent_is_rejected() {
    let rt = rt(2);
    let root = rt.create_process(LocalityId(0));
    let child = root.create_subprocess(&rt, LocalityId(1)).unwrap();
    root.cancel(&rt);
    assert!(root.is_cancelled(&rt));
    assert!(child.is_cancelled(&rt), "cancel reaches the subtree");
    match root.create_subprocess(&rt, LocalityId(0)) {
        Err(PxError::Fault(f)) => assert_eq!(f.cause, FaultCause::Cancelled),
        other => panic!("expected rejection, got {other:?}"),
    }
    rt.shutdown();
}

// ---- cancellation -----------------------------------------------------------

#[test]
fn cancel_resolves_every_waiter_kind_in_bounded_time() {
    let rt = rt(2);
    let proc = rt.create_process(LocalityId(0));

    // Control: a future created OUTSIDE the process (run_blocking has no
    // process context) must not be touched by the cancel.
    let outside_fut: FutureRef<u64> = rt.run_blocking(LocalityId(0), |ctx| ctx.new_future::<u64>());
    // A process thread creates LCOs (process-owned) and publishes them.
    let (tx, rx) = std::sync::mpsc::channel();
    let resumed = Arc::new(AtomicU64::new(0));
    let resumed2 = resumed.clone();
    proc.spawn_at(&rt, LocalityId(0), move |ctx| {
        let fut = ctx.new_future::<u64>(); // process-owned
                                           // 2. A depleted thread suspended on it observes the fault.
        let r = resumed2.clone();
        ctx.when_resolved(fut, move |_ctx, out| {
            assert!(matches!(out, Err(PxError::Fault(_))));
            r.fetch_add(1, Ordering::SeqCst);
        });
        tx.send(fut).unwrap();
    });
    let process_fut = rx.recv_timeout(BOUND).unwrap();
    proc.finish_root(&rt);

    // 3. An external waiter on the process-owned future, blocked before
    //    the cancel.
    let rt_arc = std::sync::Arc::new(rt);
    let rt2 = rt_arc.clone();
    let waiter = std::thread::spawn(move || process_fut.wait_timeout(&rt2, BOUND));

    std::thread::sleep(Duration::from_millis(20));
    proc.cancel(&rt_arc);

    // Every waiter resolves with the cancellation fault, promptly.
    expect_cancelled(waiter.join().unwrap());
    expect_cancelled(proc.done_future().wait_timeout(&rt_arc, BOUND));
    let t0 = std::time::Instant::now();
    while resumed.load(Ordering::SeqCst) == 0 {
        assert!(t0.elapsed() < BOUND, "depleted thread never resumed");
        std::thread::sleep(Duration::from_millis(1));
    }
    // The future created outside the process is unaffected.
    let r = rt_arc.wait_future_timeout(outside_fut, Duration::from_millis(50));
    assert!(
        matches!(r, Ok(None)),
        "non-process future must not be poisoned: {r:?}"
    );
    rt_arc.shutdown();
}

#[test]
fn cancel_kills_in_flight_parcels_loudly() {
    let rt = rt(2);
    let proc = rt.create_process(LocalityId(0));
    // Saturate the single worker at locality 1 with slow process parcels,
    // then cancel: parcels still queued die at dispatch with Cancelled.
    let gates: Vec<FutureRef<()>> = (0..64)
        .map(|_| {
            let fut = rt.new_future::<()>(LocalityId(0));
            proc.send_action::<Slow>(
                &rt,
                Gid::locality_root(LocalityId(1)),
                500_000,
                Continuation::set(fut.gid()),
            )
            .unwrap();
            fut
        })
        .collect();
    proc.finish_root(&rt);
    std::thread::sleep(Duration::from_millis(3));
    proc.cancel(&rt);
    // Every continuation resolves: executed legs with unit, killed legs
    // with the fault — none hang.
    let mut killed = 0u64;
    for fut in gates {
        match fut.wait_timeout(&rt, BOUND) {
            Ok(Some(())) => {}
            Ok(None) => panic!("a parcel continuation was stranded"),
            Err(PxError::Fault(f)) => {
                assert_eq!(f.cause, FaultCause::Cancelled);
                killed += 1;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(killed > 0, "cancel arrived after all 64 slow parcels ran?");
    // Bounded drain: the process counter reaches zero.
    let t0 = std::time::Instant::now();
    while proc.active(&rt) > 0 {
        assert!(t0.elapsed() < BOUND, "activity counter never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    let total = rt.stats().total();
    assert_eq!(total.dead_cancelled, killed);
    assert_eq!(total.deaths_by_cause_total(), total.dead_parcels);
    assert_eq!(rt.stats().processes_cancelled, 1);
    // New spawns are rejected after cancel.
    assert!(matches!(
        proc.send_action::<Slow>(
            &rt,
            Gid::locality_root(LocalityId(1)),
            1,
            Continuation::none()
        ),
        Err(PxError::Fault(_))
    ));
    rt.shutdown();
}

#[test]
fn healthy_workloads_report_zero_cancellations() {
    let rt = rt(2);
    let proc = rt.create_process(LocalityId(0));
    let hits = Arc::new(AtomicU64::new(0));
    for l in 0..2u16 {
        let h = hits.clone();
        proc.spawn_at(&rt, LocalityId(l), move |_ctx| {
            h.fetch_add(1, Ordering::SeqCst);
        });
    }
    proc.finish_root(&rt);
    proc.wait(&rt).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 2);
    let total = rt.stats().total();
    assert_eq!(total.dead_cancelled, 0);
    assert_eq!(total.tasks_cancelled, 0);
    assert_eq!(rt.stats().processes_cancelled, 0);
    assert_eq!(rt.stats().processes_created, 1);
    rt.shutdown();
}

// ---- process-scoped namespaces ---------------------------------------------

#[test]
fn process_names_live_under_the_prefix_and_die_at_exit() {
    let rt = rt(2);
    let proc = rt.create_process(LocalityId(0));
    let data = rt.new_data_at(LocalityId(1), vec![1, 2, 3]);
    let full = proc.register_name(&rt, "blobs/input", data).unwrap();
    assert!(full.starts_with(&proc.prefix()), "{full}");
    // Resolvable both through the process view and the global table.
    assert_eq!(proc.lookup_name(&rt, "blobs/input").unwrap(), data);
    assert_eq!(rt.lookup_name(&full).unwrap(), data);
    assert_eq!(proc.names(&rt).len(), 1);
    // Same short name in a *different* process does not collide.
    let other = rt.create_process(LocalityId(1));
    other.register_name(&rt, "blobs/input", data).unwrap();
    // Exit (here: quiescence) bulk-unregisters the namespace.
    proc.finish_root(&rt);
    proc.wait(&rt).unwrap();
    assert!(proc.lookup_name(&rt, "blobs/input").is_err());
    assert!(rt.lookup_name(&full).is_err());
    // The other process's namespace is untouched.
    assert_eq!(other.lookup_name(&rt, "blobs/input").unwrap(), data);
    // Cancellation is also an exit: names vanish.
    let c = rt.create_process(LocalityId(0));
    c.register_name(&rt, "tmp", data).unwrap();
    c.cancel(&rt);
    assert!(c.lookup_name(&rt, "tmp").is_err());
    rt.shutdown();
}

// ---- collectives ------------------------------------------------------------

#[test]
fn broadcast_reaches_every_touched_locality_and_reduces() {
    let rt = rt(4);
    let proc = rt.create_process(LocalityId(0));
    // Touch localities 0 (home), 1, and 3 — but never 2.
    for l in [1u16, 3] {
        proc.spawn_at(&rt, LocalityId(l), |_ctx| {});
    }
    proc.finish_root(&rt);
    proc.wait(&rt).unwrap();
    // Sum of (100 + locality id) over {0, 1, 3} = 304.
    let fut = proc
        .broadcast::<CountHere>(
            &rt,
            &100,
            &0u64,
            Box::new(|a, b| {
                let x: u64 = a.decode().unwrap();
                let y: u64 = b.decode().unwrap();
                Value::encode(&(x + y)).unwrap()
            }),
        )
        .unwrap();
    assert_eq!(fut.wait_timeout(&rt, BOUND).unwrap(), Some(304));
    rt.shutdown();
}

#[test]
fn broadcast_on_cancelled_process_is_rejected_and_inflight_poisoned() {
    let rt = rt(3);
    let proc = rt.create_process(LocalityId(0));
    for l in 1..3u16 {
        proc.spawn_at(&rt, LocalityId(l), |_ctx| {});
    }
    proc.finish_root(&rt);
    proc.wait(&rt).unwrap();
    // An in-flight broadcast whose legs are slow...
    let fut = proc
        .broadcast::<Slow>(
            &rt,
            &20_000_000, // 20 ms per leg
            &(),
            Box::new(|a, _| a),
        )
        .unwrap();
    proc.cancel(&rt);
    // ...resolves with the fault instead of hanging (reduce is poisoned
    // or its legs are killed — either way the waiter learns).
    expect_cancelled(fut.wait_timeout(&rt, BOUND));
    // And a post-cancel broadcast is rejected outright.
    assert!(matches!(
        proc.broadcast::<CountHere>(&rt, &1, &0u64, Box::new(|a, _| a)),
        Err(PxError::Fault(_))
    ));
    rt.shutdown();
}

// ---- process-table GC -------------------------------------------------------

#[test]
fn reap_removes_quiesced_processes_and_keeps_the_done_contract() {
    let rt = rt(2);
    let mut done_futures = Vec::new();
    let mut procs = Vec::new();
    for i in 0..10u64 {
        let proc = rt.create_process(LocalityId((i % 2) as u16));
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        proc.spawn_at(&rt, LocalityId(0), move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        proc.finish_root(&rt);
        proc.wait(&rt).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        done_futures.push(proc.done_future());
        procs.push(proc);
    }
    assert_eq!(rt.process_table_size(), 10);
    assert_eq!(rt.stats().processes_reaped, 0, "no sweep ran yet");
    // `wait` resolves when the done future fires, which happens just
    // before the record's exit cleanup — poll until every record is
    // reapable.
    let t0 = std::time::Instant::now();
    let mut reaped = 0;
    while reaped < 10 {
        reaped += rt.reap_processes();
        assert!(t0.elapsed() < BOUND, "records never became reapable");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(rt.process_table_size(), 0);
    assert_eq!(rt.stats().processes_reaped, 10);
    // The done-future contract survives the reap: done futures still
    // resolve for late waiters, and handle queries degrade gracefully.
    for fut in done_futures {
        fut.wait(&rt).unwrap();
    }
    for proc in &procs {
        assert_eq!(proc.active(&rt), 0);
        assert!(proc.children(&rt).is_empty());
        assert!(!proc.is_cancelled(&rt));
    }
    // A re-sweep is a no-op.
    assert_eq!(rt.reap_processes(), 0);
    rt.shutdown();
}

#[test]
fn reap_runs_automatically_and_spares_live_processes() {
    let rt = rt(1);
    // A long-lived tenant parent that must survive every sweep.
    let parent = rt.create_process(LocalityId(0));
    // Churn enough one-shot processes to cross the periodic sweep
    // threshold several times.
    for _ in 0..200 {
        let p = rt.create_process(LocalityId(0));
        p.finish_root(&rt);
        p.wait(&rt).unwrap();
    }
    let t0 = std::time::Instant::now();
    while rt.stats().processes_reaped == 0 {
        assert!(t0.elapsed() < BOUND, "automatic sweep never fired");
        let p = rt.create_process(LocalityId(0));
        p.finish_root(&rt);
        p.wait(&rt).unwrap();
    }
    assert!(
        rt.process_table_size() < 200,
        "table should shrink: {} records",
        rt.process_table_size()
    );
    // The live parent was never reaped: it still accepts subprocesses.
    assert!(parent.create_subprocess(&rt, LocalityId(0)).is_ok());
    // Cancelled subtrees become reapable too, once drained.
    parent.cancel(&rt);
    let t0 = std::time::Instant::now();
    loop {
        rt.reap_processes();
        let gone = parent.active(&rt) == 0 && rt.process_table_size() == 0;
        if gone {
            break;
        }
        assert!(t0.elapsed() < BOUND, "cancelled subtree never reaped");
        std::thread::sleep(Duration::from_millis(1));
    }
    rt.shutdown();
}
