//! Cross-crate integration tests: the ParalleX runtime end to end, over a
//! real (latency-injecting) wire.

use parallex::core::prelude::*;
use parallex::core::{echo, lco::FutureRef};
use std::time::Duration;

struct Add;
impl Action for Add {
    const NAME: &'static str = "it/add";
    type Args = (u64, u64);
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, (a, b): (u64, u64)) -> u64 {
        a + b
    }
}

struct Fib;
impl Action for Fib {
    const NAME: &'static str = "it/fib";
    type Args = u64;
    type Out = u64;
    #[allow(clippy::only_used_in_recursion)]
    fn execute(ctx: &mut Ctx<'_>, _t: Gid, n: u64) -> u64 {
        // Recursive actions exercise nested parcel execution (the result
        // is computed synchronously per activation; distribution happens
        // at the call sites below).
        if n < 2 {
            n
        } else {
            let f1 = Fib::execute(ctx, _t, n - 1);
            let f2 = Fib::execute(ctx, _t, n - 2);
            f1 + f2
        }
    }
}

fn rt_with_latency(locs: usize, us: u64) -> Runtime {
    RuntimeBuilder::new(Config::small(locs, 1).with_latency(Duration::from_micros(us)))
        .register::<Add>()
        .register::<Fib>()
        .build()
        .unwrap()
}

#[test]
fn typed_action_roundtrip_over_wire() {
    let rt = rt_with_latency(3, 50);
    let fut = rt.new_future::<u64>(LocalityId(0));
    rt.send_action::<Add>(
        Gid::locality_root(LocalityId(2)),
        (40, 2),
        Continuation::set(fut.gid()),
    )
    .unwrap();
    assert_eq!(fut.wait(&rt).unwrap(), 42);
    rt.shutdown();
}

#[test]
fn continuation_chains_migrate_control() {
    // Add at L1, whose result is contributed to a reduce at L0, twice.
    let rt = rt_with_latency(2, 20);
    let fold: parallex::core::lco::ReduceFn = Box::new(|a, b| {
        let x: u64 = a.decode().unwrap();
        let y: u64 = b.decode().unwrap();
        parallex::core::action::Value::encode(&(x + y)).unwrap()
    });
    let red = rt.new_reduce(LocalityId(0), 2, &0u64, fold).unwrap();
    for k in 0..2u64 {
        rt.send_action::<Add>(
            Gid::locality_root(LocalityId(1)),
            (k, 10),
            Continuation::contribute(red.gid()),
        )
        .unwrap();
    }
    assert_eq!(rt.wait_future(red).unwrap(), 21);
    rt.shutdown();
}

#[test]
fn migration_forwards_in_flight_parcels() {
    let rt = rt_with_latency(3, 30);
    let data = rt.new_data_at(LocalityId(1), vec![5u8; 64]);
    // Warm a stale resolution at L0 by fetching once.
    let warm = rt.run_blocking(LocalityId(0), move |ctx| ctx.fetch_data(data));
    let bytes = rt.wait_future(warm).unwrap();
    assert_eq!(bytes.len(), 64);
    // Migrate to L2, then fetch again from L0 (stale cache → forward).
    rt.migrate_data(data, LocalityId(2)).unwrap();
    let fut = rt.run_blocking(LocalityId(0), move |ctx| ctx.fetch_data(data));
    let bytes = rt.wait_future(fut).unwrap();
    assert_eq!(bytes.len(), 64);
    // The read goes to the authoritative owner.
    assert_eq!(rt.read_data(data).unwrap(), vec![5u8; 64]);
    let total = rt.stats().total();
    assert!(total.dead_parcels == 0, "no parcels may die: {total:?}");
    rt.shutdown();
}

#[test]
fn process_quiescence_spans_wire_latency() {
    let rt = rt_with_latency(3, 40);
    let proc = rt.create_process(LocalityId(0));
    let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    for l in 0..3u16 {
        let c = counter.clone();
        proc.spawn_at(&rt, LocalityId(l), move |ctx| {
            // Children hop to the next locality before counting.
            let next = LocalityId((l + 1) % 3);
            for _ in 0..4 {
                let c = c.clone();
                ctx.spawn_at(next, move |_ctx| {
                    c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
    }
    proc.finish_root(&rt);
    proc.wait(&rt).unwrap();
    assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 12);
    rt.shutdown();
}

#[test]
fn semaphore_serializes_across_localities() {
    let rt = rt_with_latency(2, 10);
    let sem = rt.new_semaphore(LocalityId(0), 1);
    let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let gate = rt.new_and_gate(LocalityId(0), 8);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    for k in 0..8u16 {
        let log = log.clone();
        rt.spawn_at(LocalityId(k % 2), move |ctx| {
            let log = log.clone();
            ctx.acquire(sem, move |ctx| {
                log.lock().push(("enter", k));
                log.lock().push(("exit", k));
                ctx.release(sem);
                ctx.trigger_value(gate, parallex::core::action::Value::unit());
            });
        });
    }
    rt.wait_future(gate_fut).unwrap();
    let log = log.lock();
    assert_eq!(log.len(), 16);
    // Critical sections must not interleave.
    for pair in log.chunks(2) {
        assert_eq!(pair[0].0, "enter");
        assert_eq!(pair[1].0, "exit");
        assert_eq!(pair[0].1, pair[1].1);
    }
    rt.shutdown();
}

#[test]
fn echo_tree_propagates_updates_over_wire() {
    let rt = rt_with_latency(4, 20);
    let tree = echo::create_tree(&rt, LocalityId(0), 2, &1u64).unwrap();
    // Update through the root.
    let root = tree.root;
    rt.spawn_at(LocalityId(3), move |ctx| {
        echo::update_ctx(ctx, root, &99u64).unwrap();
    });
    // Every replica must converge to version 2 value 99.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    for l in 0..4u16 {
        let node = tree.local_node(LocalityId(l));
        loop {
            let (v, ver) = rt.run_blocking(LocalityId(l), move |ctx| {
                echo::read_local::<u64>(ctx.locality(), node).unwrap()
            });
            if ver == 2 && v == 99 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "replica at L{l} did not converge: v{ver}={v}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    rt.shutdown();
}

#[test]
fn panics_are_isolated() {
    let rt = rt_with_latency(2, 0);
    let fut = rt.new_future::<u8>(LocalityId(0));
    let fut_gid = fut.gid();
    rt.spawn_at(LocalityId(1), |_ctx| {
        panic!("deliberate PX-thread panic");
    });
    // The runtime survives and continues to execute work.
    rt.spawn_at(LocalityId(1), move |ctx| {
        ctx.trigger(fut_gid, &7u8).unwrap();
    });
    assert_eq!(fut.wait(&rt).unwrap(), 7);
    assert_eq!(rt.stats().total().panics, 1);
    rt.shutdown();
}

#[test]
fn dataflow_across_localities() {
    let rt = rt_with_latency(3, 25);
    let out = rt.new_future::<u64>(LocalityId(0));
    let out_gid = out.gid();
    rt.spawn_at(LocalityId(0), move |ctx| {
        let combine: parallex::core::lco::CombineFn = Box::new(|slots| {
            let product: u64 = slots
                .iter_mut()
                .map(|s| s.take().unwrap().decode::<u64>().unwrap())
                .product();
            parallex::core::action::Value::encode(&product).unwrap()
        });
        let node = ctx.new_dataflow(3, combine);
        ctx.when_ready(node, move |ctx, v| {
            let product: u64 = v.decode().unwrap();
            ctx.trigger(out_gid, &product).unwrap();
        });
        // Producers at three localities fill the slots over the wire.
        for (idx, l) in [(0u32, 0u16), (1, 1), (2, 2)] {
            ctx.spawn_at(LocalityId(l), move |ctx| {
                ctx.set_slot(node, idx, &(idx as u64 + 2)).unwrap();
            });
        }
    });
    assert_eq!(out.wait(&rt).unwrap(), 2 * 3 * 4);
    rt.shutdown();
}

#[test]
fn symbolic_names_route_work() {
    let rt = rt_with_latency(2, 0);
    let data = rt.new_data_at(LocalityId(1), b"hello".to_vec());
    rt.register_name("/app/greeting", data).unwrap();
    let fut = rt.run_blocking(LocalityId(0), |ctx| {
        let gid = ctx.lookup_name("/app/greeting").unwrap();
        ctx.fetch_data(gid)
    });
    assert_eq!(rt.wait_future(fut).unwrap(), b"hello".to_vec());
    rt.shutdown();
}

#[test]
fn stats_accounting_is_consistent() {
    let rt = rt_with_latency(2, 0);
    let fut = rt.new_future::<u64>(LocalityId(0));
    rt.send_action::<Add>(
        Gid::locality_root(LocalityId(1)),
        (1, 2),
        Continuation::set(fut.gid()),
    )
    .unwrap();
    fut.wait(&rt).unwrap();
    let s = rt.stats();
    let total = s.total();
    assert!(total.parcels_sent >= 2, "action + lco_set: {total:?}");
    assert!(total.parcels_recv >= 2);
    assert_eq!(total.dead_parcels, 0);
    assert_eq!(total.panics, 0);
    rt.shutdown();
}

/// Tentpole happy path: an explicitly traced request replays end to end —
/// the send, its dispatch at the target, and the continuation's LCO
/// delivery all appear under one id, in causal order.
#[test]
fn traced_request_replays_in_causal_order() {
    let rt = RuntimeBuilder::new(Config::small(2, 1).with_trace_sampling(1))
        .register::<Add>()
        .build()
        .unwrap();
    let fut = rt.new_future::<u64>(LocalityId(0));
    let trace = rt.new_trace_id().expect("tracing is on");
    rt.send_action_traced::<Add>(
        Gid::locality_root(LocalityId(1)),
        (40, 2),
        Continuation::set(fut.gid()),
        trace,
    )
    .unwrap();
    assert_eq!(fut.wait(&rt).unwrap(), 42);
    // The ring write races the waiter wakeup by design (recording is
    // off the hot path), so give the worker a bounded moment to land
    // the trigger event before reading the timeline.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut dump = rt.trace_dump_for(trace);
    while !dump
        .events
        .iter()
        .any(|e| e.kind == TraceEventKind::LcoTrigger)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(1));
        dump = rt.trace_dump_for(trace);
    }
    assert!(!dump.events.is_empty(), "traced request left a timeline");
    let pos = |kind: TraceEventKind| dump.events.iter().position(|e| e.kind == kind);
    let send = pos(TraceEventKind::ParcelSend).expect("send recorded");
    let dispatch = pos(TraceEventKind::ParcelDispatch).expect("dispatch recorded");
    let trigger = pos(TraceEventKind::LcoTrigger).expect("future set recorded");
    assert!(
        send < dispatch && dispatch < trigger,
        "causal order send -> dispatch -> trigger:\n{}",
        dump.render()
    );
    assert!(
        dump.events.iter().all(|e| e.trace == trace),
        "filtered dump carries only the requested id"
    );
    // The stats surface agrees that events were recorded and none lost.
    let total = rt.stats().total();
    assert!(total.trace_events_recorded >= dump.events.len() as u64);
    assert_eq!(total.trace_events_dropped, 0);
    rt.shutdown();
}
