//! Fault-propagation integration tests: every parcel-death path must
//! resolve downstream waiters with a `PxError::Fault` within a bounded
//! wait instead of hanging them forever. Each test here deadlocked (or
//! timed out) before faults became first-class values.

use parallex::core::parcel::ContStep;
use parallex::core::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Generous bound: a genuine hang hits this, a delivered fault never does.
const BOUND: Duration = Duration::from_secs(10);

struct Add;
impl Action for Add {
    const NAME: &'static str = "faults/add";
    type Args = (u64, u64);
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, (a, b): (u64, u64)) -> u64 {
        a + b
    }
}

struct Boom;
impl Action for Boom {
    const NAME: &'static str = "faults/boom";
    type Args = ();
    type Out = u64;
    fn execute(_ctx: &mut Ctx<'_>, _t: Gid, _args: ()) -> u64 {
        panic!("boom: deliberate test panic");
    }
}

fn rt(locs: usize) -> Runtime {
    RuntimeBuilder::new(Config::small(locs, 1))
        .register::<Add>()
        .register::<Boom>()
        .build()
        .unwrap()
}

fn expect_fault<T: std::fmt::Debug>(r: PxResult<Option<T>>) -> Fault {
    match r {
        Err(PxError::Fault(f)) => f,
        Ok(None) => panic!("timed out: fault was never delivered (the old hang)"),
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn hop_cap_exhausted_chase_faults_the_waiter() {
    let rt = rt(2);
    // A data GID that was never created: the chase retries at the
    // birthplace until the hop budget dies, then must poison the future.
    let bogus = Gid::new(LocalityId(0), GidKind::Data, 0x00C0FFEE);
    let fut = rt.run_blocking(LocalityId(1), move |ctx| ctx.fetch_data(bogus));
    let f = expect_fault(rt.wait_future_timeout(fut, BOUND));
    assert_eq!(f.cause, FaultCause::HopCap);
    assert_eq!(f.dest, bogus);
    let total = rt.stats().total();
    assert!(total.dead_hop_cap >= 1, "{total:?}");
    assert!(total.chase_cap_violations >= 1);
    assert_eq!(total.deaths_by_cause_total(), total.dead_parcels);
    rt.shutdown();
}

#[test]
fn panicking_action_faults_the_waiter() {
    let rt = rt(2);
    let fut = rt.new_future::<u64>(LocalityId(0));
    rt.send_action::<Boom>(
        Gid::locality_root(LocalityId(1)),
        (),
        Continuation::set(fut.gid()),
    )
    .unwrap();
    let f = expect_fault(rt.wait_future_timeout(fut, BOUND));
    assert_eq!(f.cause, FaultCause::Panic);
    assert!(
        f.message.contains("boom"),
        "panic message must ride the fault: {f:?}"
    );
    let total = rt.stats().total();
    assert_eq!(total.dead_panic, 1);
    assert_eq!(total.panics, 1);
    assert_eq!(total.deaths_by_cause_total(), total.dead_parcels);
    rt.shutdown();
}

#[test]
fn unknown_action_faults_the_waiter() {
    let rt = rt(2);
    let fut = rt.new_future::<u64>(LocalityId(0));
    let gid = fut.gid();
    rt.run_blocking(LocalityId(0), move |ctx| {
        ctx.send_parcel(Parcel::new(
            Gid::locality_root(LocalityId(1)),
            ActionId::of("faults/not_registered"),
            Value::unit(),
            Continuation::set(gid),
        ));
    });
    let f = expect_fault(rt.wait_future_timeout(fut, BOUND));
    assert_eq!(f.cause, FaultCause::UnknownAction);
    assert_eq!(f.action, ActionId::of("faults/not_registered"));
    assert_eq!(rt.stats().total().dead_unknown_action, 1);
    rt.shutdown();
}

#[test]
fn undecodable_args_fault_the_waiter() {
    let rt = rt(2);
    let fut = rt.new_future::<u64>(LocalityId(0));
    let gid = fut.gid();
    rt.run_blocking(LocalityId(0), move |ctx| {
        // One lonely byte can never decode as (u64, u64): the handler
        // errors before executing and the error must reach the future.
        ctx.send_parcel(Parcel::new(
            Gid::locality_root(LocalityId(1)),
            Add::id(),
            Value::from_bytes(vec![7]),
            Continuation::set(gid),
        ));
    });
    let f = expect_fault(rt.wait_future_timeout(fut, BOUND));
    assert_eq!(f.cause, FaultCause::Decode);
    assert_eq!(rt.stats().total().dead_decode, 1);
    rt.shutdown();
}

#[test]
fn double_trigger_ack_carries_the_error() {
    let rt = rt(1);
    let fut = rt.new_future::<u64>(LocalityId(0));
    rt.set_future(fut, &1).unwrap();
    assert_eq!(fut.wait(&rt).unwrap(), 1);
    // A second (data-carrying) LCO_SET violates single assignment. The
    // ack continuation must receive the error, not a unit "success".
    let ack = rt.new_future::<()>(LocalityId(0));
    let (fut_gid, ack_gid) = (fut.gid(), ack.gid());
    rt.run_blocking(LocalityId(0), move |ctx| {
        ctx.send_parcel(Parcel::new(
            fut_gid,
            parallex::core::sched::sys::LCO_SET,
            Value::encode(&2u64).unwrap(),
            Continuation::set(ack_gid),
        ));
    });
    let f = expect_fault(rt.wait_future_timeout(ack, BOUND));
    assert_eq!(f.cause, FaultCause::HandlerError);
    assert!(f.message.contains("already triggered"), "{f:?}");
    // The future's observed value is untouched by the failed overwrite.
    assert_eq!(fut.wait(&rt).unwrap(), 1);
    rt.shutdown();
}

#[test]
fn poison_propagates_through_reduction_chains() {
    let rt = rt(2);
    // A reduction expecting 3 contributions: two healthy, one from an
    // action that panics. The fault must poison the reduction and reach
    // the driver — under the old semantics the reduce hung at 2/3.
    let sum = rt
        .new_reduce::<u64>(
            LocalityId(0),
            3,
            &0,
            Box::new(|a, b| {
                let x: u64 = a.decode().unwrap();
                let y: u64 = b.decode().unwrap();
                Value::encode(&(x + y)).unwrap()
            }),
        )
        .unwrap();
    rt.send_action::<Add>(
        Gid::locality_root(LocalityId(1)),
        (1, 2),
        Continuation::contribute(sum.gid()),
    )
    .unwrap();
    rt.send_action::<Add>(
        Gid::locality_root(LocalityId(1)),
        (3, 4),
        Continuation::contribute(sum.gid()),
    )
    .unwrap();
    rt.send_action::<Boom>(
        Gid::locality_root(LocalityId(1)),
        (),
        Continuation::contribute(sum.gid()),
    )
    .unwrap();
    let f = expect_fault(rt.wait_future_timeout(sum, BOUND));
    assert_eq!(f.cause, FaultCause::Panic);
    rt.shutdown();
}

#[test]
fn fault_short_circuits_call_chains() {
    let rt = rt(2);
    // Boom's fault flows through a Call step (whose action must NOT run
    // on fault bytes) and still poisons the final future in the chain.
    let fut = rt.new_future::<u64>(LocalityId(0));
    let cont = Continuation {
        steps: vec![
            ContStep::Call {
                action: Add::id(),
                target: Gid::locality_root(LocalityId(0)),
            },
            ContStep::SetLco(fut.gid()),
        ],
    };
    rt.send_action::<Boom>(Gid::locality_root(LocalityId(1)), (), cont)
        .unwrap();
    let f = expect_fault(rt.wait_future_timeout(fut, BOUND));
    assert_eq!(f.cause, FaultCause::Panic, "origin cause preserved: {f:?}");
    rt.shutdown();
}

#[test]
fn dead_letter_hook_observes_every_fault() {
    let seen: Arc<Mutex<Vec<Fault>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    let rt = RuntimeBuilder::new(Config::small(2, 1))
        .register::<Boom>()
        .on_dead_letter(move |f| sink.lock().unwrap().push(f.clone()))
        .build()
        .unwrap();
    let fut = rt.new_future::<u64>(LocalityId(0));
    rt.send_action::<Boom>(
        Gid::locality_root(LocalityId(1)),
        (),
        Continuation::set(fut.gid()),
    )
    .unwrap();
    expect_fault(rt.wait_future_timeout(fut, BOUND));
    let faults = seen.lock().unwrap().clone();
    assert_eq!(faults.len(), 1, "exactly one dead letter: {faults:?}");
    assert_eq!(faults[0].cause, FaultCause::Panic);
    assert_eq!(faults[0].action, Boom::id());
    rt.shutdown();
}

#[test]
fn poisoned_semaphore_never_grants_its_critical_section() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let rt = rt(1);
    // Zero permits: every acquire queues.
    let sem = rt.new_semaphore(LocalityId(0), 0);
    let ran = Arc::new(AtomicBool::new(false));
    let flag = ran.clone();
    rt.run_blocking(LocalityId(0), move |ctx| {
        ctx.acquire(sem, move |_| flag.store(true, Ordering::SeqCst));
    });
    // Poison the semaphore: a panicking producer's fault is delivered to
    // it as the continuation target.
    rt.send_action::<Boom>(
        Gid::locality_root(LocalityId(0)),
        (),
        Continuation::set(sem),
    )
    .unwrap();
    // The poison must surface loudly to value waiters…
    let f = expect_fault(match rt.wait_value(sem) {
        Ok(v) => Ok(Some(v)),
        Err(e) => Err(e),
    });
    assert_eq!(f.cause, FaultCause::Panic);
    // …while the queued acquirer's critical section must NOT run as if a
    // permit were granted (that would break mutual exclusion silently).
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !ran.load(Ordering::SeqCst),
        "poison must not admit a critical section"
    );
    rt.shutdown();
}

#[test]
fn zero_count_gates_fire_immediately() {
    let rt = rt(1);
    let gate = rt.new_and_gate(LocalityId(0), 0);
    let gate_fut: FutureRef<()> = FutureRef::from_gid(gate);
    assert!(rt.wait_future_timeout(gate_fut, BOUND).unwrap().is_some());
    // A late unit trigger on the pre-fired gate must not underflow/error.
    rt.trigger(gate, &()).unwrap();
    let red = rt
        .new_reduce::<u64>(LocalityId(0), 0, &17, Box::new(|a, _| a))
        .unwrap();
    assert_eq!(rt.wait_future_timeout(red, BOUND).unwrap(), Some(17));
    let total = rt.stats().total();
    assert_eq!(total.dead_parcels, 0, "no deaths on the zero-count path");
    rt.shutdown();
}

/// Satellite regression for the tracing tentpole: a hop-cap death must
/// hand the traced dead-letter hook its full chase history — every
/// bounced hop, causally ordered, ending in the kill itself. Before
/// causal tracing the fault carried only the final "budget exhausted"
/// message with no way to see *where* the parcel wandered.
#[test]
fn traced_hop_cap_death_reports_its_chase_history() {
    let captured: Arc<Mutex<Option<(Fault, TraceDump)>>> = Arc::new(Mutex::new(None));
    let sink = captured.clone();
    let rt = RuntimeBuilder::new(Config::small(2, 1).with_trace_sampling(1))
        .on_dead_letter_traced(move |f, d| {
            if f.cause == FaultCause::HopCap {
                *sink.lock().unwrap() = Some((f.clone(), d.clone()));
            }
        })
        .build()
        .unwrap();
    let bogus = Gid::new(LocalityId(0), GidKind::Data, 0x00C0FFEE);
    let fut = rt.run_blocking(LocalityId(1), move |ctx| ctx.fetch_data(bogus));
    expect_fault(rt.wait_future_timeout(fut, BOUND));
    let (fault, dump) = captured
        .lock()
        .unwrap()
        .take()
        .expect("traced dead-letter hook observed the hop-cap death");
    assert_eq!(fault.cause, FaultCause::HopCap);
    assert_eq!(
        dump.trace_ids().len(),
        1,
        "the captured slice is exactly the dying trace: {}",
        dump.render()
    );
    let chases = dump
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceEventKind::Chase | TraceEventKind::ParcelForward
            )
        })
        .count();
    assert!(
        chases >= 8,
        "the full chase history must be visible, got {chases} hops:\n{}",
        dump.render()
    );
    let last = dump.events.last().expect("non-empty slice");
    assert_eq!(
        last.kind,
        TraceEventKind::ParcelKill,
        "the kill is the causally last captured event:\n{}",
        dump.render()
    );
    assert_eq!(last.gid, bogus.0, "the kill names the chased gid");
    assert_eq!(
        last.aux,
        u64::from(FaultCause::HopCap.code()),
        "the kill carries the cause code"
    );
    rt.shutdown();
}

#[test]
fn healthy_workloads_see_no_faults() {
    // The off-path guarantee: a non-failing workload's stats show zero
    // deaths in every cause bucket, and results are unchanged.
    let rt = rt(3);
    let fut = rt.new_future::<u64>(LocalityId(0));
    rt.send_action::<Add>(
        Gid::locality_root(LocalityId(2)),
        (40, 2),
        Continuation::set(fut.gid()),
    )
    .unwrap();
    assert_eq!(fut.wait(&rt).unwrap(), 42);
    let total = rt.stats().total();
    assert_eq!(total.dead_parcels, 0);
    assert_eq!(total.deaths_by_cause_total(), 0);
    assert_eq!(total.panics, 0);
    rt.shutdown();
}
