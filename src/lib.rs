//! Facade crate re-exporting the ParalleX workspace.
//!
//! See the README for an overview. The interesting crates:
//! [`px_core`] (the execution model), [`px_litlx`] (the LITL-X API),
//! [`px_gilgamesh`] (the Gilgamesh II architecture study),
//! [`px_datavortex`] (the interconnect simulator).
pub use px_balance as balance;
pub use px_baseline as baseline;
pub use px_core as core;
pub use px_datavortex as datavortex;
pub use px_gilgamesh as gilgamesh;
pub use px_litlx as litlx;
pub use px_sim as sim;
pub use px_wire as wire;
pub use px_workloads as workloads;
